//! Log-bucketed latency histograms.
//!
//! A [`Histogram`] records unsigned nanosecond values into power-of-two
//! buckets: bucket 0 holds the value 0, bucket *i* (for `i >= 1`) holds
//! the range `[2^(i-1), 2^i - 1]`. Sixty-four buckets cover the full
//! `u64` range, so recording never saturates or drops. The trade is the
//! usual one for log buckets: percentiles are exact to within one
//! power-of-two bucket, clamped to the recorded min/max so the reported
//! quantiles never escape the observed range.
//!
//! Histograms are plain value types: [`Histogram::merge`] folds one into
//! another (commutative and associative — the property tests pin this),
//! which is how per-shard recordings aggregate into one distribution.

/// Number of log buckets: enough for the full `u64` range.
pub const BUCKETS: usize = 64;

/// A mergeable log-bucketed histogram of `u64` samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// The bucket index a value lands in: 0 for 0, otherwise the position
/// of the value's highest set bit plus one, clamped to the last bucket.
pub fn bucket_of(value: u64) -> usize {
    ((u64::BITS - value.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// The largest value bucket `i` can hold (the inclusive upper bound
/// percentile extraction reports before min/max clamping).
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Raw per-bucket counts (index via [`bucket_of`]).
    pub fn bucket_counts(&self) -> &[u64; BUCKETS] {
        &self.counts
    }

    /// The quantile `q` in `[0, 1]`: the upper bound of the first bucket
    /// whose cumulative count reaches rank `ceil(q * count)`, clamped to
    /// the recorded `[min, max]`. Returns 0 when empty.
    ///
    /// Monotone in `q` by construction: a larger `q` can only land in
    /// the same or a later bucket, and the clamp preserves order.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_bound(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// The median (p50).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// The 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// The 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Folds `other` into `self`. Commutative and associative: bucket
    /// counts, totals and sums add; min/max take the extremes.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        // Every bucket's upper bound lands in that bucket.
        for i in 1..BUCKETS - 1 {
            assert_eq!(bucket_of(bucket_upper_bound(i)), i);
            assert_eq!(bucket_of(bucket_upper_bound(i) + 1), i + 1);
        }
    }

    #[test]
    fn quantiles_bracket_the_distribution() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30, 40, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), 10);
        assert_eq!(h.max(), 1000);
        assert!(h.p50() >= h.min() && h.p50() <= h.max());
        assert!(h.p50() <= h.p99());
        assert!(h.p99() <= h.p999());
        assert!(h.p999() <= h.max());
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn merge_sums_counts_and_takes_extremes() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(5);
        a.record(100);
        b.record(1);
        b.record(7);
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba, "merge is commutative");
        assert_eq!(ab.count(), 4);
        assert_eq!(ab.min(), 1);
        assert_eq!(ab.max(), 100);
    }
}
