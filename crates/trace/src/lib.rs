//! `decaf-trace`: virtual-time tracing and latency-percentile metrics
//! for the Decaf reproduction.
//!
//! The paper's argument is an accounting argument — each kernel/user
//! crossing, doorbell and copy has a cost, and the ablations compare
//! those costs. This crate makes the accounting visible: spans and
//! events stamped with the simulated kernel's virtual `now_ns`, a
//! charge-attribution hook that assigns every charged nanosecond to the
//! innermost open span, request-scoped latency histograms with
//! p50/p99/p999, Chrome `trace_event` JSON export, and a text flame
//! summary.
//!
//! Design rules:
//!
//! * **No clocks, no charges.** Every API takes the timestamp as an
//!   argument; the tracer never reads wall time and never charges
//!   virtual time, so tracing has zero observer effect by construction.
//! * **No dependencies.** Only `decaf-simkernel` links this crate; all
//!   other crates emit through `Kernel` wrapper methods, and when no
//!   tracer is installed those wrappers cost one `Option` check.
//! * **Deterministic.** Registries iterate in name order, the JSON
//!   serializer uses fixed formatting, and timestamps are virtual — two
//!   same-seed runs produce byte-identical trace files.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod hist;
pub mod registry;
pub mod tracer;

pub use chrome::{chrome_trace_json, validate_chrome_json, TRACE_PID};
pub use hist::{bucket_of, bucket_upper_bound, Histogram, BUCKETS};
pub use registry::{fmt_us, MetricsRegistry, Table};
pub use tracer::{validate_nesting, CostClass, Coverage, Phase, TraceEvent, Tracer, MAX_ARGS};
