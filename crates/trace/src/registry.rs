//! The metrics registry and the one text-report path.
//!
//! A [`MetricsRegistry`] is a named collection of [`Histogram`]s (and
//! plain counters). Workload request spans record per-request latencies
//! here; the benchmark tables read p50/p99/p999 back out. Names are kept
//! in a `BTreeMap` so iteration — and therefore every rendered report —
//! is deterministic.
//!
//! [`Table`] is the single report renderer the bench tables print
//! through: column headers plus stringified rows, aligned and rendered
//! by one code path instead of one hand-rolled format string per table.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::hist::Histogram;

/// Named histograms and counters with interior mutability, so recording
/// needs only a shared reference (the tracer holds one registry behind
/// an `Rc`).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    hists: RefCell<BTreeMap<String, Histogram>>,
    counters: RefCell<BTreeMap<String, u64>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Records one sample into the named histogram (created on first
    /// use).
    pub fn record(&self, name: &str, value: u64) {
        let mut hists = self.hists.borrow_mut();
        hists.entry(name.to_string()).or_default().record(value);
    }

    /// Adds to the named counter (created on first use).
    pub fn count(&self, name: &str, delta: u64) {
        let mut counters = self.counters.borrow_mut();
        *counters.entry(name.to_string()).or_default() += delta;
    }

    /// A snapshot of the named histogram, if any sample was recorded.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.hists.borrow().get(name).copied()
    }

    /// The named counter's value (0 if never bumped).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.borrow().get(name).copied().unwrap_or(0)
    }

    /// Sorted names of all histograms recorded so far.
    pub fn histogram_names(&self) -> Vec<String> {
        self.hists.borrow().keys().cloned().collect()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.hists.borrow().is_empty() && self.counters.borrow().is_empty()
    }

    /// Renders every histogram as one percentile table (count, p50, p99,
    /// p999, max in microseconds) plus any counters — the registry's own
    /// report path.
    pub fn report(&self) -> String {
        let mut t = Table::new("Metrics");
        t.columns(&["metric", "count", "p50 µs", "p99 µs", "p999 µs", "max µs"]);
        for (name, h) in self.hists.borrow().iter() {
            t.row(vec![
                name.clone(),
                h.count().to_string(),
                fmt_us(h.p50()),
                fmt_us(h.p99()),
                fmt_us(h.p999()),
                fmt_us(h.max()),
            ]);
        }
        let mut out = t.render();
        let counters = self.counters.borrow();
        if !counters.is_empty() {
            let mut t = Table::new("Counters");
            t.columns(&["counter", "value"]);
            for (name, v) in counters.iter() {
                t.row(vec![name.clone(), v.to_string()]);
            }
            out.push('\n');
            out.push_str(&t.render());
        }
        out
    }
}

/// Formats nanoseconds as microseconds with three decimals.
pub fn fmt_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// A deterministic text table: the one rendering path for every
/// benchmark table. The first column is left-aligned (labels), all
/// others right-aligned (numbers).
#[derive(Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// An empty table with a title line.
    pub fn new(title: impl Into<String>) -> Self {
        Table {
            title: title.into(),
            headers: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Sets the column headers.
    pub fn columns(&mut self, names: &[&str]) -> &mut Self {
        self.headers = names.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Appends one row. Short rows are padded with empty cells; long
    /// rows extend the column count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Renders title, header rule and rows with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain([self.headers.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; ncols];
        for row in std::iter::once(&self.headers).chain(self.rows.iter()) {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        let line = |row: &[String]| {
            let mut s = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                if i > 0 {
                    s.push_str("  ");
                }
                if i == 0 {
                    s.push_str(&format!("{cell:<w$}"));
                } else {
                    s.push_str(&format!("{cell:>w$}"));
                }
            }
            s.trim_end().to_string()
        };
        if !self.headers.is_empty() {
            let h = line(&self.headers);
            let _ = writeln!(out, "{h}");
            let _ = writeln!(out, "{}", "-".repeat(h.len()));
        }
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_records_and_reports() {
        let r = MetricsRegistry::new();
        for v in [1_000u64, 2_000, 4_000, 1_000_000] {
            r.record("request_ns", v);
        }
        r.count("doorbells", 3);
        let h = r.histogram("request_ns").unwrap();
        assert_eq!(h.count(), 4);
        assert!(h.p50() <= h.p99() && h.p99() <= h.p999());
        let report = r.report();
        assert!(report.contains("request_ns"));
        assert!(report.contains("doorbells"));
        assert_eq!(r.counter("doorbells"), 3);
    }

    #[test]
    fn table_renders_deterministically_aligned() {
        let mut t = Table::new("T");
        t.columns(&["name", "x"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "22".into()]);
        let r1 = t.render();
        let r2 = t.render();
        assert_eq!(r1, r2);
        assert!(r1.starts_with("T\n"));
        assert!(r1.contains("long-name"));
    }
}
