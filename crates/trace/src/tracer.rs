//! The virtual-time tracer: spans, instants, request latencies and
//! charge attribution.
//!
//! Every timestamp is passed in by the caller (the simulated kernel's
//! `now_ns`), so this crate never reads a wall clock — traces from the
//! same seed are byte-identical. The tracer itself never charges
//! virtual time: observing a run cannot change it (zero observer
//! effect; the trace-validate CI job asserts this end to end).
//!
//! Three event families:
//!
//! * **sync spans** ([`Tracer::begin_span`] / [`Tracer::end_span`]) —
//!   strictly nested, RAII-scoped at the call site, rendered as Chrome
//!   `B`/`E` pairs. The *innermost* open span receives every virtual-time
//!   charge made while it is open ([`Tracer::attribute`]), so summing
//!   leaf self-times reconciles exactly with the clock's charged totals;
//! * **instants** ([`Tracer::instant`]) — point events with small
//!   numeric arguments (token ids, descriptor counts, overlap credit);
//! * **request spans** ([`Tracer::req_begin`] / [`Tracer::req_end`]) —
//!   id-keyed begin/end pairs that may cross sync-span boundaries (a
//!   URB completes long after its submitter returned). Each completed
//!   request records its latency into the registry's histogram under
//!   the request key.

use std::borrow::Cow;
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::rc::Rc;

use crate::registry::MetricsRegistry;

/// The CPU class a charge is attributed to. Mirrors the simulated
/// kernel's class split without depending on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostClass {
    /// Kernel-class busy time.
    Kernel,
    /// User-class busy time.
    User,
}

impl CostClass {
    fn index(self) -> usize {
        match self {
            CostClass::Kernel => 0,
            CostClass::User => 1,
        }
    }
}

/// Event phase, mapped onto Chrome `trace_event` phases at export time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Sync span open (`B`).
    Begin,
    /// Sync span close (`E`).
    End,
    /// Point event (`i`).
    Instant,
    /// Request (async) span open (`b`).
    ReqBegin,
    /// Request (async) span close (`e`).
    ReqEnd,
}

/// Maximum numeric arguments one event carries.
pub const MAX_ARGS: usize = 3;

/// One recorded event. Plain data: comparing two runs' event vectors
/// (or their serialized JSON) is the determinism check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time, nanoseconds.
    pub ts: u64,
    /// Phase (span open/close, instant, request open/close).
    pub phase: Phase,
    /// Category (subsystem: `xpc`, `ring`, `kernel`, ...).
    pub cat: &'static str,
    /// Event name.
    pub name: Cow<'static, str>,
    /// Track (Chrome `tid`): 0 for unsharded work, shard id + 1 inside a
    /// shard scope.
    pub track: u32,
    /// Request id (request spans only; 0 otherwise).
    pub id: u64,
    /// Up to [`MAX_ARGS`] named numeric arguments.
    pub args: Vec<(&'static str, u64)>,
}

/// One open sync span on the stack.
struct OpenSpan {
    cat: &'static str,
    name: &'static str,
    track: u32,
    start_ts: u64,
    self_ns: [u64; 2],
}

/// Aggregated flame-summary entry for one (cat, name) span class.
#[derive(Debug, Default, Clone, Copy)]
struct FlameEntry {
    count: u64,
    self_ns: [u64; 2],
    total_ns: u64,
}

/// The tracer: an event buffer, a span stack, charge attribution and a
/// metrics registry, all keyed by caller-provided virtual time.
pub struct Tracer {
    keep_events: bool,
    events: RefCell<Vec<TraceEvent>>,
    stack: RefCell<Vec<OpenSpan>>,
    attributed: Cell<[u64; 2]>,
    unattributed: Cell<[u64; 2]>,
    flame: RefCell<BTreeMap<(&'static str, &'static str), FlameEntry>>,
    open_requests: RefCell<HashMap<(&'static str, u64), u64>>,
    registry: MetricsRegistry,
}

/// Per-class totals of charge attribution: how much charged time landed
/// inside some open span versus outside every span.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Coverage {
    /// Charged ns attributed to the innermost open span, per class
    /// (index 0 kernel, 1 user).
    pub attributed: [u64; 2],
    /// Charged ns observed with no span open.
    pub unattributed: [u64; 2],
}

impl Coverage {
    /// Fraction of all observed charges that landed inside a span, in
    /// `[0, 1]`; 1.0 when nothing was charged.
    pub fn fraction(&self) -> f64 {
        let a: u64 = self.attributed.iter().sum();
        let u: u64 = self.unattributed.iter().sum();
        if a + u == 0 {
            1.0
        } else {
            a as f64 / (a + u) as f64
        }
    }

    /// Total observed charges per class (attributed + unattributed).
    pub fn observed(&self, class: CostClass) -> u64 {
        let i = class.index();
        self.attributed[i] + self.unattributed[i]
    }
}

impl Tracer {
    fn with_mode(keep_events: bool) -> Rc<Self> {
        Rc::new(Tracer {
            keep_events,
            events: RefCell::new(Vec::new()),
            stack: RefCell::new(Vec::new()),
            attributed: Cell::new([0; 2]),
            unattributed: Cell::new([0; 2]),
            flame: RefCell::new(BTreeMap::new()),
            open_requests: RefCell::new(HashMap::new()),
            registry: MetricsRegistry::new(),
        })
    }

    /// A tracer that keeps the full event buffer (for export).
    pub fn new() -> Rc<Self> {
        Tracer::with_mode(true)
    }

    /// A tracer that records metrics, attribution and the flame summary
    /// but drops the per-event buffer — what the benchmark tables
    /// install to get percentiles without holding every event of a long
    /// run.
    pub fn metrics_only() -> Rc<Self> {
        Tracer::with_mode(false)
    }

    /// The metrics registry backing request-latency histograms.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    fn push_event(&self, ev: TraceEvent) {
        if self.keep_events {
            self.events.borrow_mut().push(ev);
        }
    }

    /// Opens a sync span at `ts` on `track`. Must be closed by a
    /// matching [`Tracer::end_span`] (the kernel wraps the pair in an
    /// RAII guard).
    pub fn begin_span(&self, ts: u64, cat: &'static str, name: &'static str, track: u32) {
        self.stack.borrow_mut().push(OpenSpan {
            cat,
            name,
            track,
            start_ts: ts,
            self_ns: [0; 2],
        });
        self.push_event(TraceEvent {
            ts,
            phase: Phase::Begin,
            cat,
            name: Cow::Borrowed(name),
            track,
            id: 0,
            args: Vec::new(),
        });
    }

    /// Closes the innermost open span at `ts`, folding its self-time
    /// into the flame summary. Tolerates an empty stack (a tracer
    /// installed mid-span) by doing nothing.
    pub fn end_span(&self, ts: u64) {
        let Some(span) = self.stack.borrow_mut().pop() else {
            return;
        };
        let mut flame = self.flame.borrow_mut();
        let e = flame.entry((span.cat, span.name)).or_default();
        e.count += 1;
        e.self_ns[0] += span.self_ns[0];
        e.self_ns[1] += span.self_ns[1];
        e.total_ns += ts.saturating_sub(span.start_ts);
        drop(flame);
        self.push_event(TraceEvent {
            ts,
            phase: Phase::End,
            cat: span.cat,
            name: Cow::Borrowed(span.name),
            track: span.track,
            id: 0,
            args: Vec::new(),
        });
    }

    /// Records a point event with up to [`MAX_ARGS`] numeric arguments.
    pub fn instant(
        &self,
        ts: u64,
        cat: &'static str,
        name: &'static str,
        track: u32,
        args: &[(&'static str, u64)],
    ) {
        self.push_event(TraceEvent {
            ts,
            phase: Phase::Instant,
            cat,
            name: Cow::Borrowed(name),
            track,
            id: 0,
            args: args.iter().take(MAX_ARGS).copied().collect(),
        });
    }

    /// Opens a request span `(key, id)` at `ts`. Re-opening a live id
    /// restarts its clock (last begin wins).
    pub fn req_begin(&self, ts: u64, key: &'static str, id: u64, track: u32) {
        self.open_requests.borrow_mut().insert((key, id), ts);
        self.push_event(TraceEvent {
            ts,
            phase: Phase::ReqBegin,
            cat: "request",
            name: Cow::Borrowed(key),
            track,
            id,
            args: Vec::new(),
        });
    }

    /// Closes request `(key, id)` at `ts`, recording its latency into
    /// the registry histogram named `key`. Unknown ids are ignored (a
    /// completion for a request begun before the tracer was installed).
    pub fn req_end(&self, ts: u64, key: &'static str, id: u64, track: u32) {
        let Some(begin) = self.open_requests.borrow_mut().remove(&(key, id)) else {
            return;
        };
        self.registry.record(key, ts.saturating_sub(begin));
        self.push_event(TraceEvent {
            ts,
            phase: Phase::ReqEnd,
            cat: "request",
            name: Cow::Borrowed(key),
            track,
            id,
            args: Vec::new(),
        });
    }

    /// Requests begun and not yet ended.
    pub fn open_request_count(&self) -> usize {
        self.open_requests.borrow().len()
    }

    /// Attributes `ns` of charged virtual time to the innermost open
    /// span (or to the unattributed pool when no span is open). Called
    /// by the kernel's single charge entry point — never charges time
    /// itself.
    pub fn attribute(&self, class: CostClass, ns: u64) {
        let i = class.index();
        let mut stack = self.stack.borrow_mut();
        if let Some(top) = stack.last_mut() {
            top.self_ns[i] += ns;
            let mut a = self.attributed.get();
            a[i] += ns;
            self.attributed.set(a);
        } else {
            let mut u = self.unattributed.get();
            u[i] += ns;
            self.unattributed.set(u);
        }
    }

    /// Attribution totals so far.
    pub fn coverage(&self) -> Coverage {
        Coverage {
            attributed: self.attributed.get(),
            unattributed: self.unattributed.get(),
        }
    }

    /// Sum of closed-span leaf self-time per class — what reconciles
    /// against the clock's charged totals (open spans' partial self-time
    /// is excluded, so compare after every guard has dropped).
    pub fn leaf_self_ns(&self, class: CostClass) -> u64 {
        let i = class.index();
        self.flame.borrow().values().map(|e| e.self_ns[i]).sum()
    }

    /// Open sync spans (0 once every guard has dropped).
    pub fn open_span_count(&self) -> usize {
        self.stack.borrow().len()
    }

    /// Number of events recorded (0 on a metrics-only tracer).
    pub fn event_count(&self) -> usize {
        self.events.borrow().len()
    }

    /// A snapshot of the event buffer.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.borrow().clone()
    }

    /// The compact text flame summary: one line per (cat, name) span
    /// class, sorted by self-time descending — where the charged
    /// nanoseconds went, leaf-attributed.
    pub fn flame_summary(&self) -> String {
        let flame = self.flame.borrow();
        let mut rows: Vec<_> = flame
            .iter()
            .map(|(&(cat, name), e)| (cat, name, *e))
            .collect();
        rows.sort_by(|a, b| {
            let sa: u64 = a.2.self_ns.iter().sum();
            let sb: u64 = b.2.self_ns.iter().sum();
            sb.cmp(&sa).then_with(|| (a.0, a.1).cmp(&(b.0, b.1)))
        });
        let total: u64 = self.attributed.get().iter().sum();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "flame summary (leaf self-time; {} µs attributed)",
            total / 1_000
        );
        let _ = writeln!(
            out,
            "{:<28} {:>8} {:>12} {:>12} {:>6}",
            "span", "count", "self µs", "total µs", "self%"
        );
        for (cat, name, e) in rows {
            let self_total: u64 = e.self_ns.iter().sum();
            let pct = if total == 0 {
                0.0
            } else {
                self_total as f64 * 100.0 / total as f64
            };
            let _ = writeln!(
                out,
                "{:<28} {:>8} {:>12.1} {:>12.1} {:>5.1}%",
                format!("{cat}.{name}"),
                e.count,
                self_total as f64 / 1e3,
                e.total_ns as f64 / 1e3,
                pct
            );
        }
        out
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("events", &self.event_count())
            .field("open_spans", &self.open_span_count())
            .field("coverage", &self.coverage())
            .finish()
    }
}

/// Validates span discipline over an event buffer: per track, `B`/`E`
/// events must nest like matched brackets with non-decreasing
/// timestamps (which also means no two spans on one track's timeline
/// partially overlap), every opened span must close, and every request
/// end must follow a matching begin.
pub fn validate_nesting(events: &[TraceEvent]) -> Result<(), String> {
    let mut stacks: HashMap<u32, Vec<(&str, u64)>> = HashMap::new();
    let mut last_ts: HashMap<u32, u64> = HashMap::new();
    let mut open_reqs: HashMap<(&str, u64), u64> = HashMap::new();
    for (i, ev) in events.iter().enumerate() {
        let prev = last_ts.entry(ev.track).or_insert(0);
        if ev.ts < *prev {
            return Err(format!(
                "event {i} ({}.{}) goes back in time on track {}: {} < {}",
                ev.cat, ev.name, ev.track, ev.ts, prev
            ));
        }
        *prev = ev.ts;
        match ev.phase {
            Phase::Begin => stacks
                .entry(ev.track)
                .or_default()
                .push((ev.name.as_ref(), ev.ts)),
            Phase::End => {
                let Some((name, begin_ts)) = stacks.entry(ev.track).or_default().pop() else {
                    return Err(format!(
                        "event {i}: end of {}.{} with no open span on track {}",
                        ev.cat, ev.name, ev.track
                    ));
                };
                if name != ev.name.as_ref() {
                    return Err(format!(
                        "event {i}: span {} closed while {} was innermost (track {})",
                        ev.name, name, ev.track
                    ));
                }
                if ev.ts < begin_ts {
                    return Err(format!("event {i}: span {} ends before it begins", ev.name));
                }
            }
            Phase::ReqBegin => {
                open_reqs.insert((ev.name.as_ref(), ev.id), ev.ts);
            }
            Phase::ReqEnd => {
                if open_reqs.remove(&(ev.name.as_ref(), ev.id)).is_none() {
                    return Err(format!(
                        "event {i}: request {}#{} ended without a begin",
                        ev.name, ev.id
                    ));
                }
            }
            Phase::Instant => {}
        }
    }
    for (track, stack) in &stacks {
        if let Some((name, _)) = stack.last() {
            return Err(format!("span {name} left open on track {track}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_attribute_leafward() {
        let t = Tracer::new();
        t.begin_span(0, "kernel", "outer", 0);
        t.attribute(CostClass::Kernel, 100);
        t.begin_span(100, "kernel", "inner", 0);
        t.attribute(CostClass::Kernel, 40);
        t.attribute(CostClass::User, 10);
        t.end_span(150);
        t.attribute(CostClass::Kernel, 5);
        t.end_span(200);
        let c = t.coverage();
        assert_eq!(c.attributed, [145, 10]);
        assert_eq!(c.unattributed, [0, 0]);
        assert_eq!(t.leaf_self_ns(CostClass::Kernel), 145);
        assert_eq!(t.leaf_self_ns(CostClass::User), 10);
        validate_nesting(&t.events()).unwrap();
        let flame = t.flame_summary();
        assert!(flame.contains("kernel.inner"));
    }

    #[test]
    fn charges_outside_spans_are_unattributed() {
        let t = Tracer::new();
        t.attribute(CostClass::User, 7);
        assert_eq!(t.coverage().unattributed, [0, 7]);
        assert!(t.coverage().fraction() < 1.0);
    }

    #[test]
    fn requests_record_latency_histograms() {
        let t = Tracer::new();
        t.req_begin(1_000, "request_ns", 1, 0);
        t.req_begin(2_000, "request_ns", 2, 0);
        t.req_end(2_500, "request_ns", 2, 0);
        t.req_end(3_000, "request_ns", 1, 0);
        let h = t.registry().histogram("request_ns").unwrap();
        assert_eq!(h.count(), 2);
        assert!(h.min() >= 500 && h.max() <= 2_047);
        assert_eq!(t.open_request_count(), 0);
        validate_nesting(&t.events()).unwrap();
    }

    #[test]
    fn nesting_validation_rejects_unclosed_and_crossed_spans() {
        let t = Tracer::new();
        t.begin_span(0, "k", "a", 0);
        assert!(validate_nesting(&t.events()).is_err(), "unclosed span");
        t.end_span(10);
        validate_nesting(&t.events()).unwrap();
        // Hand-build a crossed pair on one track.
        let mut evs = t.events();
        evs.push(TraceEvent {
            ts: 20,
            phase: Phase::Begin,
            cat: "k",
            name: Cow::Borrowed("x"),
            track: 0,
            id: 0,
            args: vec![],
        });
        evs.push(TraceEvent {
            ts: 25,
            phase: Phase::End,
            cat: "k",
            name: Cow::Borrowed("y"),
            track: 0,
            id: 0,
            args: vec![],
        });
        assert!(validate_nesting(&evs).is_err(), "crossed close");
    }

    #[test]
    fn metrics_only_drops_events_but_keeps_everything_else() {
        let t = Tracer::metrics_only();
        t.begin_span(0, "k", "a", 0);
        t.attribute(CostClass::Kernel, 9);
        t.end_span(10);
        t.req_begin(0, "r", 1, 0);
        t.req_end(8, "r", 1, 0);
        assert_eq!(t.event_count(), 0);
        assert_eq!(t.coverage().attributed, [9, 0]);
        assert_eq!(t.registry().histogram("r").unwrap().count(), 1);
    }
}
