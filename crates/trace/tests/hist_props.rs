//! Property tests for the log-bucketed histogram: bucket monotonicity,
//! merge commutativity/associativity, and percentile bounds under
//! arbitrary value streams.

use decaf_trace::{bucket_of, bucket_upper_bound, Histogram, BUCKETS};
use proptest::prelude::*;

fn from_values(values: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    /// Bucketing is monotone: a larger value never lands in an earlier
    /// bucket, and every value fits under its bucket's upper bound.
    #[test]
    fn bucketing_is_monotone(a in any::<u64>(), b in any::<u64>()) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(bucket_of(lo) <= bucket_of(hi));
        prop_assert!(bucket_of(a) < BUCKETS);
        prop_assert!(a <= bucket_upper_bound(bucket_of(a)));
    }

    /// Merge is commutative and associative: any grouping and order of
    /// partial histograms produces the identical aggregate.
    #[test]
    fn merge_is_commutative_and_associative(
        xs in proptest::collection::vec(any::<u64>(), 0..60),
        ys in proptest::collection::vec(any::<u64>(), 0..60),
        zs in proptest::collection::vec(any::<u64>(), 0..60),
    ) {
        let (hx, hy, hz) = (from_values(&xs), from_values(&ys), from_values(&zs));

        let mut xy = hx;
        xy.merge(&hy);
        let mut yx = hy;
        yx.merge(&hx);
        prop_assert_eq!(xy, yx, "h1 ∪ h2 == h2 ∪ h1");

        let mut left = xy; // (x ∪ y) ∪ z
        left.merge(&hz);
        let mut yz = hy;
        yz.merge(&hz);
        let mut right = hx; // x ∪ (y ∪ z)
        right.merge(&yz);
        prop_assert_eq!(left, right, "merge is associative");

        // Merging equals recording the concatenated stream.
        let all: Vec<u64> = xs.iter().chain(&ys).chain(&zs).copied().collect();
        prop_assert_eq!(left, from_values(&all));
    }

    /// Percentiles are ordered and bracketed by the recorded extremes:
    /// min ≤ p50 ≤ p99 ≤ p999 ≤ max, and quantiles are monotone in q.
    #[test]
    fn percentiles_are_bounded_and_ordered(
        values in proptest::collection::vec(any::<u64>(), 1..200),
    ) {
        let h = from_values(&values);
        let (min, max) = (
            *values.iter().min().unwrap(),
            *values.iter().max().unwrap(),
        );
        prop_assert_eq!(h.min(), min);
        prop_assert_eq!(h.max(), max);
        prop_assert!(h.min() <= h.p50());
        prop_assert!(h.p50() <= h.p99());
        prop_assert!(h.p99() <= h.p999());
        prop_assert!(h.p999() <= h.max());
        // Monotone in q across a sweep.
        let mut prev = 0u64;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0] {
            let v = h.quantile(q);
            prop_assert!(v >= prev, "quantile({q}) went backwards");
            prop_assert!(v >= min && v <= max);
            prev = v;
        }
        // The count in buckets equals the number of samples.
        let bucket_total: u64 = h.bucket_counts().iter().sum();
        prop_assert_eq!(bucket_total, values.len() as u64);
        prop_assert_eq!(h.count(), values.len() as u64);
    }

    /// The log-bucket error is one-sided and bounded: the reported
    /// quantile is at least the true rank value and less than twice it
    /// (the width of one power-of-two bucket).
    #[test]
    fn percentile_error_is_bounded_by_one_bucket(
        values in proptest::collection::vec(1u64..1_000_000_000, 1..100),
    ) {
        let h = from_values(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.5, 0.99, 1.0] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let truth = sorted[rank - 1];
            let est = h.quantile(q);
            prop_assert!(est >= truth, "quantile({q}) = {est} under-reports {truth}");
            prop_assert!(est <= truth.saturating_mul(2), "quantile({q}) = {est} > 2x {truth}");
        }
    }
}
