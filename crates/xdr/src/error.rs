//! Error type shared by all XDR operations.

use std::fmt;

/// Result alias for XDR operations.
pub type XdrResult<T> = Result<T, XdrError>;

/// Errors raised by encoding, decoding, spec parsing or graph marshaling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XdrError {
    /// A value did not match the schema it was encoded or validated against.
    TypeMismatch {
        /// What the schema expected.
        expected: String,
        /// What was found instead.
        found: String,
    },
    /// The byte stream ended before a complete value was decoded.
    UnexpectedEof {
        /// How many bytes were needed.
        needed: usize,
        /// How many bytes remained.
        remaining: usize,
    },
    /// Trailing bytes remained after decoding a complete value.
    TrailingBytes(usize),
    /// A fixed-size opaque or array had the wrong length.
    LengthMismatch {
        /// Length required by the schema.
        expected: usize,
        /// Length of the value.
        found: usize,
    },
    /// A variable-length item exceeded its declared maximum.
    MaxExceeded {
        /// Declared maximum.
        max: usize,
        /// Actual length.
        found: usize,
    },
    /// A boolean or optional discriminant held an invalid value.
    InvalidDiscriminant(u32),
    /// A string was not valid UTF-8.
    InvalidUtf8,
    /// Padding bytes were not zero.
    NonZeroPadding,
    /// A named type was not present in the spec.
    UnknownType(String),
    /// A struct field referenced during masking or access was missing.
    UnknownField {
        /// Struct type name.
        type_name: String,
        /// Missing field.
        field: String,
    },
    /// The spec source failed to parse.
    SpecParse {
        /// 1-based line of the error.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// A graph operation referenced an address not present in the heap.
    DanglingAddr(u64),
    /// A back-reference index did not name a previously decoded object.
    BadBackRef(u32),
    /// A delta-encoded object arrived for which the receiver holds no
    /// prior state (it was released or the end was reset mid-stream).
    DeltaForUnknown(u64),
    /// An enum value was not one of the declared members.
    InvalidEnumValue {
        /// Enum type name.
        type_name: String,
        /// Offending value.
        value: i32,
    },
}

impl fmt::Display for XdrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XdrError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            XdrError::UnexpectedEof { needed, remaining } => {
                write!(
                    f,
                    "unexpected end of input: needed {needed} bytes, {remaining} remain"
                )
            }
            XdrError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
            XdrError::LengthMismatch { expected, found } => {
                write!(f, "length mismatch: expected {expected}, found {found}")
            }
            XdrError::MaxExceeded { max, found } => {
                write!(f, "length {found} exceeds declared maximum {max}")
            }
            XdrError::InvalidDiscriminant(d) => write!(f, "invalid discriminant {d}"),
            XdrError::InvalidUtf8 => write!(f, "string is not valid UTF-8"),
            XdrError::NonZeroPadding => write!(f, "padding bytes are not zero"),
            XdrError::UnknownType(name) => write!(f, "unknown type `{name}`"),
            XdrError::UnknownField { type_name, field } => {
                write!(f, "struct `{type_name}` has no field `{field}`")
            }
            XdrError::SpecParse { line, message } => {
                write!(f, "spec parse error at line {line}: {message}")
            }
            XdrError::DanglingAddr(a) => write!(f, "dangling address {a:#x}"),
            XdrError::BadBackRef(i) => write!(f, "back-reference to unknown object #{i}"),
            XdrError::DeltaForUnknown(a) => {
                write!(
                    f,
                    "delta update for object {a:#x} with no local prior state"
                )
            }
            XdrError::InvalidEnumValue { type_name, value } => {
                write!(f, "value {value} is not a member of enum `{type_name}`")
            }
        }
    }
}

impl std::error::Error for XdrError {}
