//! Cycle-aware marshaling of object graphs with object-tracker hooks.
//!
//! C driver structures form graphs: an `e1000_adapter` points at rings that
//! point back at the adapter; linked lists may be circular; two function
//! parameters may reference the same third structure. The paper's modified
//! XDR compilers (§3.2.3) handle this by keeping a table of objects already
//! marshaled and emitting a reference to the existing copy on re-encounter,
//! and by consulting the *object tracker* before allocating during
//! unmarshaling so existing objects are updated in place (§3.1.2).
//!
//! This module models "C memory" as an [`ObjHeap`] — structures addressed
//! by [`CAddr`] whose fields are scalars or pointers — and implements that
//! exact scheme:
//!
//! * pointers encode as a discriminant: `0` null, `1` inline object
//!   (preceded by its source address for tracker association), `2`
//!   back-reference to the n-th object of this message;
//! * every inline object carries a mode word: `0` full (all masked
//!   fields follow) or `1` delta (a dirty-field bitmap follows and only
//!   the flagged fields are present — see [`DeltaHook`]);
//! * [`marshal_args`] shares the seen-table across all parameters of one
//!   call, so cross-parameter sharing transfers a structure once;
//! * [`unmarshal_graph`] consults a [`TrackerHook`] before allocating.

use std::collections::{BTreeMap, HashMap};

use crate::codec::{self, Cursor};
use crate::error::{XdrError, XdrResult};
use crate::mask::{Direction, MaskSet};
use crate::schema::XdrType;
use crate::spec::XdrSpec;
use crate::value::XdrValue;

/// The address of a structure in a domain's heap (a C pointer, as an int).
pub type CAddr = u64;

/// One field of a heap structure: a scalar value or a pointer.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldVal {
    /// A non-pointer value (ints, arrays, opaques, nested value structs...).
    Scalar(XdrValue),
    /// A pointer to another heap object, or null.
    ///
    /// DriverSlicer rewrites pointers-to-arrays into pointers-to-structs
    /// (Figure 3), so in well-formed heaps every pointer targets a struct.
    Ptr(Option<CAddr>),
}

/// A structure living in an [`ObjHeap`].
#[derive(Debug, Clone, PartialEq)]
pub struct StructObj {
    /// Name of the struct type (resolved through the spec).
    pub type_name: String,
    /// Fields in declaration order.
    pub fields: Vec<(String, FieldVal)>,
}

impl StructObj {
    /// Returns the named field.
    pub fn field(&self, name: &str) -> Option<&FieldVal> {
        self.fields.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Returns the named field mutably.
    pub fn field_mut(&mut self, name: &str) -> Option<&mut FieldVal> {
        self.fields
            .iter_mut()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
    }
}

/// A heap of addressable structures, modelling one domain's memory.
///
/// Addresses are opaque and never reused within a heap's lifetime, like
/// kernel addresses during a driver's lifetime.
///
/// The heap also keeps **dirty-field generation counters**: a global
/// generation is bumped on every mutation, and each field remembers the
/// generation of its last write. Delta marshaling (see [`DeltaHook`])
/// uses these to transfer only the fields written since an object last
/// crossed a channel.
#[derive(Debug, Clone, Default)]
pub struct ObjHeap {
    objects: BTreeMap<CAddr, StructObj>,
    next_addr: CAddr,
    /// Bumped on every mutating operation.
    generation: u64,
    /// Generation at which each object was allocated.
    birth_gens: HashMap<CAddr, u64>,
    /// Generation of the last tracked write, per field. Fields absent
    /// here were last written at the object's birth generation.
    field_gens: HashMap<CAddr, HashMap<String, u64>>,
}

impl ObjHeap {
    /// An empty heap whose first allocation gets address `base`.
    ///
    /// Distinct domains use distinct bases so that accidentally mixing
    /// addresses across domains is detectable in tests.
    pub fn with_base(base: CAddr) -> Self {
        ObjHeap {
            objects: BTreeMap::new(),
            next_addr: base.max(1),
            generation: 0,
            birth_gens: HashMap::new(),
            field_gens: HashMap::new(),
        }
    }

    /// An empty heap based at address `0x1000`.
    pub fn new() -> Self {
        ObjHeap::with_base(0x1000)
    }

    /// Allocates a structure, returning its address.
    pub fn alloc(
        &mut self,
        type_name: impl Into<String>,
        fields: Vec<(String, FieldVal)>,
    ) -> CAddr {
        let addr = self.next_addr;
        self.next_addr += 0x100;
        self.objects.insert(
            addr,
            StructObj {
                type_name: type_name.into(),
                fields,
            },
        );
        self.generation += 1;
        self.birth_gens.insert(addr, self.generation);
        addr
    }

    /// Allocates a structure with schema-default field values.
    pub fn alloc_default(&mut self, type_name: &str, spec: &XdrSpec) -> XdrResult<CAddr> {
        let fields = default_fields(type_name, spec)?;
        Ok(self.alloc(type_name, fields))
    }

    /// Removes a structure (explicit free — the paper's drivers free shared
    /// objects explicitly; see §3.1.2).
    pub fn free(&mut self, addr: CAddr) -> Option<StructObj> {
        self.birth_gens.remove(&addr);
        self.field_gens.remove(&addr);
        self.objects.remove(&addr)
    }

    /// Looks up a structure.
    pub fn get(&self, addr: CAddr) -> XdrResult<&StructObj> {
        self.objects.get(&addr).ok_or(XdrError::DanglingAddr(addr))
    }

    /// Looks up a structure mutably.
    ///
    /// Because the caller may mutate any field through the returned
    /// reference, every field of the object is conservatively marked
    /// dirty. Prefer [`ObjHeap::set_scalar`]/[`ObjHeap::set_ptr`], which
    /// track exactly one field.
    pub fn get_mut(&mut self, addr: CAddr) -> XdrResult<&mut StructObj> {
        if let Some(obj) = self.objects.get(&addr) {
            self.generation += 1;
            let gens = self.field_gens.entry(addr).or_default();
            for (name, _) in &obj.fields {
                gens.insert(name.clone(), self.generation);
            }
        }
        self.objects
            .get_mut(&addr)
            .ok_or(XdrError::DanglingAddr(addr))
    }

    /// Looks up a structure mutably without touching dirty tracking.
    /// Internal: used by the tracked setters and the quiet decode path.
    fn get_mut_untracked(&mut self, addr: CAddr) -> XdrResult<&mut StructObj> {
        self.objects
            .get_mut(&addr)
            .ok_or(XdrError::DanglingAddr(addr))
    }

    /// The current global write generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The generation at which `field` of `addr` was last written (the
    /// object's allocation counts as a write of every field).
    pub fn field_gen(&self, addr: CAddr, field: &str) -> u64 {
        self.field_gens
            .get(&addr)
            .and_then(|m| m.get(field))
            .copied()
            .unwrap_or_else(|| self.birth_gens.get(&addr).copied().unwrap_or(0))
    }

    /// Whether `field` of `addr` was written after generation `since`.
    pub fn dirty_since(&self, addr: CAddr, field: &str, since: u64) -> bool {
        self.field_gen(addr, field) > since
    }

    fn mark_field_written(&mut self, addr: CAddr, field: &str) {
        self.generation += 1;
        self.field_gens
            .entry(addr)
            .or_default()
            .insert(field.to_string(), self.generation);
    }

    /// Whether `addr` names a live object.
    pub fn contains(&self, addr: CAddr) -> bool {
        self.objects.contains_key(&addr)
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the heap is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Reads a scalar field.
    pub fn scalar(&self, addr: CAddr, field: &str) -> XdrResult<&XdrValue> {
        match self.get(addr)?.field(field) {
            Some(FieldVal::Scalar(v)) => Ok(v),
            Some(FieldVal::Ptr(_)) => Err(XdrError::TypeMismatch {
                expected: "scalar field".into(),
                found: "pointer field".into(),
            }),
            None => Err(XdrError::UnknownField {
                type_name: self.get(addr)?.type_name.clone(),
                field: field.into(),
            }),
        }
    }

    /// Writes a scalar field.
    pub fn set_scalar(&mut self, addr: CAddr, field: &str, value: XdrValue) -> XdrResult<()> {
        self.set_scalar_quiet(addr, field, value)?;
        self.mark_field_written(addr, field);
        Ok(())
    }

    /// Writes a scalar field without marking it dirty. Used when decoding
    /// a transfer: the received value matches the sender's, so it must not
    /// be echoed back by the next delta.
    fn set_scalar_quiet(&mut self, addr: CAddr, field: &str, value: XdrValue) -> XdrResult<()> {
        let type_name = self.get(addr)?.type_name.clone();
        match self.get_mut_untracked(addr)?.field_mut(field) {
            Some(FieldVal::Scalar(slot)) => {
                *slot = value;
                Ok(())
            }
            Some(FieldVal::Ptr(_)) => Err(XdrError::TypeMismatch {
                expected: "scalar field".into(),
                found: "pointer field".into(),
            }),
            None => Err(XdrError::UnknownField {
                type_name,
                field: field.into(),
            }),
        }
    }

    /// Reads a pointer field.
    pub fn ptr(&self, addr: CAddr, field: &str) -> XdrResult<Option<CAddr>> {
        match self.get(addr)?.field(field) {
            Some(FieldVal::Ptr(p)) => Ok(*p),
            Some(FieldVal::Scalar(_)) => Err(XdrError::TypeMismatch {
                expected: "pointer field".into(),
                found: "scalar field".into(),
            }),
            None => Err(XdrError::UnknownField {
                type_name: self.get(addr)?.type_name.clone(),
                field: field.into(),
            }),
        }
    }

    /// Writes a pointer field.
    pub fn set_ptr(&mut self, addr: CAddr, field: &str, target: Option<CAddr>) -> XdrResult<()> {
        self.set_ptr_quiet(addr, field, target)?;
        self.mark_field_written(addr, field);
        Ok(())
    }

    /// Writes a pointer field without marking it dirty (decode path).
    fn set_ptr_quiet(&mut self, addr: CAddr, field: &str, target: Option<CAddr>) -> XdrResult<()> {
        let type_name = self.get(addr)?.type_name.clone();
        match self.get_mut_untracked(addr)?.field_mut(field) {
            Some(FieldVal::Ptr(slot)) => {
                *slot = target;
                Ok(())
            }
            Some(FieldVal::Scalar(_)) => Err(XdrError::TypeMismatch {
                expected: "pointer field".into(),
                found: "scalar field".into(),
            }),
            None => Err(XdrError::UnknownField {
                type_name,
                field: field.into(),
            }),
        }
    }

    /// Iterates over `(addr, object)` pairs in address order.
    pub fn iter(&self) -> impl Iterator<Item = (CAddr, &StructObj)> {
        self.objects.iter().map(|(a, o)| (*a, o))
    }
}

/// Object-tracker consultation during unmarshaling (paper §3.1.2).
///
/// The decoder calls [`TrackerHook::lookup`] with the sender's address and
/// the type name before allocating; on a miss it allocates and calls
/// [`TrackerHook::associate`]. The type name disambiguates embedded
/// structures that share one C address.
pub trait TrackerHook {
    /// Returns the local address already associated with `remote`, if any.
    fn lookup(&mut self, remote: CAddr, type_name: &str) -> Option<CAddr>;
    /// Records that `remote` now corresponds to `local`.
    fn associate(&mut self, remote: CAddr, type_name: &str, local: CAddr);
}

/// A tracker that never remembers anything: every object decodes fresh.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullTracker;

impl TrackerHook for NullTracker {
    fn lookup(&mut self, _remote: CAddr, _type_name: &str) -> Option<CAddr> {
        None
    }
    fn associate(&mut self, _remote: CAddr, _type_name: &str, _local: CAddr) {}
}

/// Delta-marshaling consultation during encoding.
///
/// The sender keeps, per channel end and direction, the heap generation at
/// which each local object last crossed. An object with a recorded
/// generation is **delta-encoded**: only fields written since then are
/// transferred (pointer fields are always walked, so dirtiness anywhere in
/// the reachable subgraph still propagates). An object never sent before
/// is encoded in full.
pub trait DeltaHook {
    /// The heap generation at which `local` was last sent in `dir`.
    fn last_sent(&mut self, local: CAddr, dir: Direction) -> Option<u64>;
    /// Records that `local` has now been sent at generation `gen`.
    fn mark_sent(&mut self, local: CAddr, dir: Direction, gen: u64);
}

/// A hook that never deltas: every object encodes in full, nothing is
/// remembered. This reproduces the paper's per-call re-marshaling.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoDelta;

impl DeltaHook for NoDelta {
    fn last_sent(&mut self, _local: CAddr, _dir: Direction) -> Option<u64> {
        None
    }
    fn mark_sent(&mut self, _local: CAddr, _dir: Direction, _gen: u64) {}
}

/// Counters describing one delta-aware marshal.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DeltaStats {
    /// Objects encoded in full (first transfer, or too many fields).
    pub full_objects: u64,
    /// Objects encoded as dirty-field deltas.
    pub delta_objects: u64,
    /// Masked scalar fields skipped because they were clean.
    pub fields_elided: u64,
}

const PTR_NULL: u32 = 0;
const PTR_INLINE: u32 = 1;
const PTR_BACKREF: u32 = 2;

/// Object-body encoding modes following the `PTR_INLINE` address.
const ENC_FULL: u32 = 0;
const ENC_DELTA: u32 = 1;
/// Delta encoding carries a `u32` field bitmap, so types with more masked
/// fields fall back to full encoding.
const DELTA_MAX_FIELDS: usize = 32;

/// Marshals a single rooted graph; equivalent to `marshal_args` with one
/// argument.
pub fn marshal_graph(
    heap: &ObjHeap,
    root: Option<CAddr>,
    spec: &XdrSpec,
    masks: &MaskSet,
    dir: Direction,
) -> XdrResult<Vec<u8>> {
    marshal_args(heap, &[root], spec, masks, dir)
}

/// Marshals the argument list of one XPC: each root is encoded as a
/// pointer, and the seen-table is shared across roots so that "passing two
/// structures that both reference a third results in marshaling the third
/// structure just once" (paper §3.2.3).
pub fn marshal_args(
    heap: &ObjHeap,
    roots: &[Option<CAddr>],
    spec: &XdrSpec,
    masks: &MaskSet,
    dir: Direction,
) -> XdrResult<Vec<u8>> {
    marshal_args_translated(heap, roots, spec, masks, dir, &|a| a)
}

/// Like [`marshal_args`], but applies `translate` to every object address
/// written on the wire.
///
/// This is the sender-side half of object tracking: a stub "invokes the
/// object tracker to translate any parameters to their equivalent C
/// pointers" (paper §3.1.1 step 2). An object that originated in the peer
/// domain is announced under its *canonical* (origin-domain) address so
/// the peer recognizes it and updates it in place.
pub fn marshal_args_translated(
    heap: &ObjHeap,
    roots: &[Option<CAddr>],
    spec: &XdrSpec,
    masks: &MaskSet,
    dir: Direction,
    translate: &dyn Fn(CAddr) -> CAddr,
) -> XdrResult<Vec<u8>> {
    marshal_args_delta(heap, roots, spec, masks, dir, translate, &mut NoDelta)
        .map(|(bytes, _)| bytes)
}

/// Like [`marshal_args_translated`], but consults `delta` so that objects
/// the peer has already seen transfer only their dirty fields.
///
/// This is the second layer of traffic reduction: field-selective masks
/// decide which fields *can* cross; the delta hook elides those that did
/// not change since the object's last crossing.
#[allow(clippy::too_many_arguments)]
pub fn marshal_args_delta(
    heap: &ObjHeap,
    roots: &[Option<CAddr>],
    spec: &XdrSpec,
    masks: &MaskSet,
    dir: Direction,
    translate: &dyn Fn(CAddr) -> CAddr,
    delta: &mut dyn DeltaHook,
) -> XdrResult<(Vec<u8>, DeltaStats)> {
    let mut out = Vec::new();
    let mut seen: HashMap<CAddr, u32> = HashMap::new();
    let mut stats = DeltaStats::default();
    let mut enc = Encoder {
        heap,
        spec,
        masks,
        dir,
        translate,
        delta,
        stats: &mut stats,
        sent_gen: heap.generation(),
        clean_memo: HashMap::new(),
        sent: Vec::new(),
    };
    for root in roots {
        enc.encode_ptr(*root, &mut seen, &mut out)?;
    }
    // Only now that the whole message encoded does the delta map advance:
    // a mid-marshal error discards the wire, and recording sends for it
    // would make every later delta silently elide fields the peer never
    // received.
    let Encoder {
        delta,
        sent,
        sent_gen,
        ..
    } = enc;
    for addr in sent {
        delta.mark_sent(addr, dir, sent_gen);
    }
    Ok((out, stats))
}

/// Encoder state threaded through the graph walk.
struct Encoder<'a> {
    heap: &'a ObjHeap,
    spec: &'a XdrSpec,
    masks: &'a MaskSet,
    dir: Direction,
    translate: &'a dyn Fn(CAddr) -> CAddr,
    delta: &'a mut dyn DeltaHook,
    stats: &'a mut DeltaStats,
    /// Generation recorded for every object sent in this marshal.
    sent_gen: u64,
    /// Dirty-reachability memo shared across the whole marshal: the heap
    /// cannot change mid-marshal, and `mark_sent` only makes objects
    /// cleaner, so a cached `false` is at worst conservative (the object
    /// re-encodes as a cheap back-reference).
    clean_memo: HashMap<CAddr, bool>,
    /// Objects encoded by this marshal, committed to the delta hook only
    /// after the whole message encodes successfully.
    sent: Vec<CAddr>,
}

impl Encoder<'_> {
    fn encode_ptr(
        &mut self,
        target: Option<CAddr>,
        seen: &mut HashMap<CAddr, u32>,
        out: &mut Vec<u8>,
    ) -> XdrResult<()> {
        let addr = match target {
            None => {
                out.extend_from_slice(&PTR_NULL.to_be_bytes());
                return Ok(());
            }
            Some(addr) => addr,
        };
        if let Some(&index) = seen.get(&addr) {
            out.extend_from_slice(&PTR_BACKREF.to_be_bytes());
            out.extend_from_slice(&index.to_be_bytes());
            return Ok(());
        }
        out.extend_from_slice(&PTR_INLINE.to_be_bytes());
        out.extend_from_slice(&(self.translate)(addr).to_be_bytes());
        let index = seen.len() as u32;
        seen.insert(addr, index);
        let obj = self.heap.get(addr)?;
        let decl = self.spec.struct_fields(&obj.type_name)?.to_vec();
        let masked: Vec<&(String, XdrType)> = decl
            .iter()
            .filter(|(fname, _)| self.masks.includes(&obj.type_name, fname, self.dir))
            .collect();

        let prior = self.delta.last_sent(addr, self.dir);
        let as_delta = prior.is_some() && masked.len() <= DELTA_MAX_FIELDS;
        self.sent.push(addr);

        if as_delta {
            let since = prior.unwrap_or(0);
            self.stats.delta_objects += 1;
            out.extend_from_slice(&ENC_DELTA.to_be_bytes());
            // A scalar field is present when written since `since`; a
            // pointer field when the pointer itself changed or anything
            // reachable through it did (so nested dirtiness propagates
            // while clean subgraphs cost nothing at all).
            let mut bitmap = 0u32;
            for (i, (fname, fty)) in masked.iter().enumerate() {
                let is_ptr = pointer_target(fty, self.spec)?.is_some();
                let present = if self.heap.dirty_since(addr, fname, since) {
                    true
                } else if is_ptr {
                    match obj.field(fname) {
                        Some(FieldVal::Ptr(Some(p))) => !self.subgraph_clean(*p)?,
                        _ => false,
                    }
                } else {
                    false
                };
                if present {
                    bitmap |= 1 << i;
                } else {
                    self.stats.fields_elided += 1;
                }
            }
            out.extend_from_slice(&bitmap.to_be_bytes());
            for (i, (fname, fty)) in masked.iter().enumerate() {
                if bitmap & (1 << i) != 0 {
                    self.encode_field(obj, fname, fty, seen, out)?;
                }
            }
        } else {
            self.stats.full_objects += 1;
            out.extend_from_slice(&ENC_FULL.to_be_bytes());
            for (fname, fty) in &masked {
                self.encode_field(obj, fname, fty, seen, out)?;
            }
        }
        Ok(())
    }

    /// Whether `addr` and everything reachable from it through masked
    /// pointer fields is unchanged since its last transfer. Unsent
    /// objects count as dirty; cycles are broken by treating in-progress
    /// nodes as clean (a cycle alone cannot introduce dirtiness).
    fn subgraph_clean(&mut self, addr: CAddr) -> XdrResult<bool> {
        if let Some(&clean) = self.clean_memo.get(&addr) {
            return Ok(clean);
        }
        // In-progress sentinel: assume clean to close cycles; overwritten
        // with the real verdict as the walk unwinds.
        self.clean_memo.insert(addr, true);
        let since = match self.delta.last_sent(addr, self.dir) {
            Some(g) => g,
            None => {
                self.clean_memo.insert(addr, false);
                return Ok(false);
            }
        };
        let obj = self.heap.get(addr)?;
        let decl = self.spec.struct_fields(&obj.type_name)?.to_vec();
        for (fname, _) in &decl {
            if !self.masks.includes(&obj.type_name, fname, self.dir) {
                continue;
            }
            if self.heap.dirty_since(addr, fname, since) {
                self.clean_memo.insert(addr, false);
                return Ok(false);
            }
            if let Some(FieldVal::Ptr(Some(p))) = obj.field(fname) {
                if !self.subgraph_clean(*p)? {
                    self.clean_memo.insert(addr, false);
                    return Ok(false);
                }
            }
        }
        Ok(true)
    }

    fn encode_field(
        &mut self,
        obj: &StructObj,
        fname: &str,
        fty: &XdrType,
        seen: &mut HashMap<CAddr, u32>,
        out: &mut Vec<u8>,
    ) -> XdrResult<()> {
        let fval = obj.field(fname).ok_or_else(|| XdrError::UnknownField {
            type_name: obj.type_name.clone(),
            field: fname.into(),
        })?;
        match (fval, pointer_target(fty, self.spec)?) {
            (FieldVal::Ptr(p), Some(_)) => self.encode_ptr(*p, seen, out),
            (FieldVal::Ptr(_), None) => Err(XdrError::TypeMismatch {
                expected: fty.idl(),
                found: "pointer".into(),
            }),
            (FieldVal::Scalar(_), Some(target)) => Err(XdrError::TypeMismatch {
                expected: format!("pointer to {target}"),
                found: "scalar".into(),
            }),
            (FieldVal::Scalar(v), None) => codec::encode_into(v, fty, self.spec, out),
        }
    }
}

/// Unmarshals one rooted graph produced by [`marshal_graph`].
///
/// Returns the local root address (or `None` for a null root). Objects
/// found through `tracker` are updated in place; unknown objects are
/// allocated in `heap` with schema defaults for fields outside the mask.
pub fn unmarshal_graph(
    bytes: &[u8],
    root_type: &str,
    heap: &mut ObjHeap,
    spec: &XdrSpec,
    masks: &MaskSet,
    dir: Direction,
    tracker: &mut dyn TrackerHook,
) -> XdrResult<Option<CAddr>> {
    let roots = unmarshal_args(bytes, &[root_type], heap, spec, masks, dir, tracker)?;
    Ok(roots[0])
}

/// Unmarshals the argument list of one XPC produced by [`marshal_args`].
pub fn unmarshal_args(
    bytes: &[u8],
    root_types: &[&str],
    heap: &mut ObjHeap,
    spec: &XdrSpec,
    masks: &MaskSet,
    dir: Direction,
    tracker: &mut dyn TrackerHook,
) -> XdrResult<Vec<Option<CAddr>>> {
    let mut cur = Cursor::new(bytes);
    let mut table: Vec<CAddr> = Vec::new();
    let mut out = Vec::with_capacity(root_types.len());
    for root_type in root_types {
        out.push(decode_ptr(
            &mut cur, root_type, heap, spec, masks, dir, tracker, &mut table,
        )?);
    }
    if cur.remaining() != 0 {
        return Err(XdrError::TrailingBytes(cur.remaining()));
    }
    Ok(out)
}

#[allow(clippy::too_many_arguments)]
fn decode_ptr(
    cur: &mut Cursor<'_>,
    type_name: &str,
    heap: &mut ObjHeap,
    spec: &XdrSpec,
    masks: &MaskSet,
    dir: Direction,
    tracker: &mut dyn TrackerHook,
    table: &mut Vec<CAddr>,
) -> XdrResult<Option<CAddr>> {
    match cur.read_u32()? {
        PTR_NULL => Ok(None),
        PTR_BACKREF => {
            let index = cur.read_u32()?;
            table
                .get(index as usize)
                .copied()
                .map(Some)
                .ok_or(XdrError::BadBackRef(index))
        }
        PTR_INLINE => {
            let remote = {
                // Manually assemble the u64 source address.
                let hi = cur.read_u32()? as u64;
                let lo = cur.read_u32()? as u64;
                (hi << 32) | lo
            };
            // An object announced under an address of *this* heap is one of
            // our own coming home: update it in place. Otherwise consult
            // the object tracker before allocating (paper §3.1.2). Domain
            // heaps use disjoint address bases, so the home check is exact.
            let mut fresh_alloc = false;
            let local = if heap.contains(remote) {
                remote
            } else {
                match tracker.lookup(remote, type_name) {
                    Some(existing) if heap.contains(existing) => existing,
                    _ => {
                        let fresh = heap.alloc_default(type_name, spec)?;
                        tracker.associate(remote, type_name, fresh);
                        fresh_alloc = true;
                        fresh
                    }
                }
            };
            table.push(local);
            let mode = cur.read_u32()?;
            let decl = spec.struct_fields(type_name)?.to_vec();
            let masked: Vec<&(String, XdrType)> = decl
                .iter()
                .filter(|(fname, _)| masks.includes(type_name, fname, dir))
                .collect();
            let bitmap = match mode {
                ENC_FULL => u32::MAX,
                ENC_DELTA => {
                    if fresh_alloc {
                        // A delta presumes we hold the object's prior
                        // state; surfacing the desync beats silently
                        // merging onto schema defaults.
                        return Err(XdrError::DeltaForUnknown(remote));
                    }
                    cur.read_u32()?
                }
                d => return Err(XdrError::InvalidDiscriminant(d)),
            };
            for (i, (fname, fty)) in masked.iter().enumerate() {
                if mode == ENC_DELTA && bitmap & (1 << i) == 0 {
                    continue; // clean field: local copy is already current
                }
                match pointer_target(fty, spec)? {
                    Some(target_type) => {
                        let p =
                            decode_ptr(cur, &target_type, heap, spec, masks, dir, tracker, table)?;
                        heap.set_ptr_quiet(local, fname, p)?;
                    }
                    None => {
                        let v = codec::decode_from(cur, fty, spec)?;
                        heap.set_scalar_quiet(local, fname, v)?;
                    }
                }
            }
            Ok(Some(local))
        }
        d => Err(XdrError::InvalidDiscriminant(d)),
    }
}

/// If `ty` is a pointer-to-struct (possibly through aliases), returns the
/// target struct name; otherwise `None` (scalar field).
pub fn pointer_target(ty: &XdrType, spec: &XdrSpec) -> XdrResult<Option<String>> {
    match ty {
        XdrType::Optional(inner) => match inner.as_ref() {
            XdrType::Struct(name) => Ok(Some(name.clone())),
            XdrType::Named(name) => match spec.resolve(name)? {
                XdrType::Struct(resolved) => Ok(Some(resolved)),
                _ => Ok(None),
            },
            _ => Ok(None),
        },
        XdrType::Named(name) => {
            let resolved = spec.resolve(name)?;
            if resolved == *ty {
                return Ok(None);
            }
            pointer_target(&resolved, spec)
        }
        _ => Ok(None),
    }
}

/// Schema-default fields for a freshly allocated structure.
pub fn default_fields(type_name: &str, spec: &XdrSpec) -> XdrResult<Vec<(String, FieldVal)>> {
    let decl = spec.struct_fields(type_name)?.to_vec();
    let mut fields = Vec::with_capacity(decl.len());
    for (fname, fty) in decl {
        let val = match pointer_target(&fty, spec)? {
            Some(_) => FieldVal::Ptr(None),
            None => FieldVal::Scalar(default_value(&fty, spec)?),
        };
        fields.push((fname, val));
    }
    Ok(fields)
}

/// The schema-default value for a type (zeroes, empty strings, nulls).
pub fn default_value(ty: &XdrType, spec: &XdrSpec) -> XdrResult<XdrValue> {
    Ok(match ty {
        XdrType::Void => XdrValue::Void,
        XdrType::Int => XdrValue::Int(0),
        XdrType::UInt => XdrValue::UInt(0),
        XdrType::Hyper => XdrValue::Hyper(0),
        XdrType::UHyper => XdrValue::UHyper(0),
        XdrType::Bool => XdrValue::Bool(false),
        XdrType::Float => XdrValue::Float(0.0),
        XdrType::Double => XdrValue::Double(0.0),
        XdrType::Enum(name) => {
            let members = spec.enum_members(name)?;
            XdrValue::Enum(members.first().map_or(0, |(_, v)| *v))
        }
        XdrType::OpaqueFixed(n) => XdrValue::Opaque(vec![0; *n]),
        XdrType::OpaqueVar(_) => XdrValue::Opaque(Vec::new()),
        XdrType::Str(_) => XdrValue::Str(String::new()),
        XdrType::ArrayFixed(elem, n) => {
            let v = default_value(elem, spec)?;
            XdrValue::Array(vec![v; *n])
        }
        XdrType::ArrayVar(_, _) => XdrValue::Array(Vec::new()),
        XdrType::Struct(name) => {
            let decl = spec.struct_fields(name)?.to_vec();
            let mut fields = Vec::with_capacity(decl.len());
            for (fname, fty) in decl {
                fields.push((fname, default_value(&fty, spec)?));
            }
            XdrValue::Struct {
                type_name: name.clone(),
                fields,
            }
        }
        XdrType::Optional(_) => XdrValue::Optional(None),
        XdrType::Named(name) => default_value(&spec.resolve(name)?, spec)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> XdrSpec {
        XdrSpec::parse(
            "struct node { int v; struct node *next; };\n\
             struct ring { int id; struct shared *owner; };\n\
             struct shared { int token; };\n\
             struct pairargs { struct ring *a; struct ring *b; };",
        )
        .unwrap()
    }

    #[test]
    fn heap_accessors() {
        let mut heap = ObjHeap::new();
        let a = heap.alloc(
            "node",
            vec![
                ("v".into(), FieldVal::Scalar(XdrValue::Int(1))),
                ("next".into(), FieldVal::Ptr(None)),
            ],
        );
        assert_eq!(heap.scalar(a, "v").unwrap(), &XdrValue::Int(1));
        heap.set_scalar(a, "v", XdrValue::Int(9)).unwrap();
        assert_eq!(heap.scalar(a, "v").unwrap(), &XdrValue::Int(9));
        assert_eq!(heap.ptr(a, "next").unwrap(), None);
        heap.set_ptr(a, "next", Some(a)).unwrap();
        assert_eq!(heap.ptr(a, "next").unwrap(), Some(a));
        assert!(heap.scalar(a, "next").is_err());
        assert!(heap.ptr(a, "v").is_err());
        assert!(heap.scalar(0xdead, "v").is_err());
    }

    #[test]
    fn acyclic_list_roundtrip() {
        let s = spec();
        let mut src = ObjHeap::new();
        let b = src.alloc(
            "node",
            vec![
                ("v".into(), FieldVal::Scalar(XdrValue::Int(2))),
                ("next".into(), FieldVal::Ptr(None)),
            ],
        );
        let a = src.alloc(
            "node",
            vec![
                ("v".into(), FieldVal::Scalar(XdrValue::Int(1))),
                ("next".into(), FieldVal::Ptr(Some(b))),
            ],
        );
        let bytes = marshal_graph(&src, Some(a), &s, &MaskSet::full(), Direction::In).unwrap();
        let mut dst = ObjHeap::with_base(0x9000_0000);
        let root = unmarshal_graph(
            &bytes,
            "node",
            &mut dst,
            &s,
            &MaskSet::full(),
            Direction::In,
            &mut NullTracker,
        )
        .unwrap()
        .unwrap();
        assert_eq!(dst.scalar(root, "v").unwrap(), &XdrValue::Int(1));
        let next = dst.ptr(root, "next").unwrap().unwrap();
        assert_eq!(dst.scalar(next, "v").unwrap(), &XdrValue::Int(2));
        assert_eq!(dst.ptr(next, "next").unwrap(), None);
    }

    #[test]
    fn circular_list_terminates_and_reconnects() {
        let s = spec();
        let mut src = ObjHeap::new();
        let a = src.alloc(
            "node",
            vec![
                ("v".into(), FieldVal::Scalar(XdrValue::Int(1))),
                ("next".into(), FieldVal::Ptr(None)),
            ],
        );
        let b = src.alloc(
            "node",
            vec![
                ("v".into(), FieldVal::Scalar(XdrValue::Int(2))),
                ("next".into(), FieldVal::Ptr(Some(a))),
            ],
        );
        src.set_ptr(a, "next", Some(b)).unwrap();

        let bytes = marshal_graph(&src, Some(a), &s, &MaskSet::full(), Direction::In).unwrap();
        let mut dst = ObjHeap::with_base(0x9000_0000);
        let root = unmarshal_graph(
            &bytes,
            "node",
            &mut dst,
            &s,
            &MaskSet::full(),
            Direction::In,
            &mut NullTracker,
        )
        .unwrap()
        .unwrap();
        let second = dst.ptr(root, "next").unwrap().unwrap();
        let back = dst.ptr(second, "next").unwrap().unwrap();
        assert_eq!(back, root, "cycle must close on the decoded side");
        assert_eq!(dst.len(), 2, "exactly two objects transferred");
    }

    #[test]
    fn cross_parameter_sharing_marshals_shared_struct_once() {
        let s = spec();
        let mut src = ObjHeap::new();
        let shared = src.alloc(
            "shared",
            vec![("token".into(), FieldVal::Scalar(XdrValue::Int(7)))],
        );
        let r1 = src.alloc(
            "ring",
            vec![
                ("id".into(), FieldVal::Scalar(XdrValue::Int(1))),
                ("owner".into(), FieldVal::Ptr(Some(shared))),
            ],
        );
        let r2 = src.alloc(
            "ring",
            vec![
                ("id".into(), FieldVal::Scalar(XdrValue::Int(2))),
                ("owner".into(), FieldVal::Ptr(Some(shared))),
            ],
        );
        let bytes = marshal_args(
            &src,
            &[Some(r1), Some(r2)],
            &s,
            &MaskSet::full(),
            Direction::In,
        )
        .unwrap();
        let mut dst = ObjHeap::with_base(0x9000_0000);
        let roots = unmarshal_args(
            &bytes,
            &["ring", "ring"],
            &mut dst,
            &s,
            &MaskSet::full(),
            Direction::In,
            &mut NullTracker,
        )
        .unwrap();
        let (d1, d2) = (roots[0].unwrap(), roots[1].unwrap());
        assert_eq!(dst.ptr(d1, "owner").unwrap(), dst.ptr(d2, "owner").unwrap());
        assert_eq!(dst.len(), 3, "shared struct transferred once");
    }

    #[test]
    fn tracker_updates_existing_object_in_place() {
        let s = spec();
        let mut src = ObjHeap::new();
        let a = src.alloc(
            "shared",
            vec![("token".into(), FieldVal::Scalar(XdrValue::Int(1)))],
        );

        // A tiny tracker remembering one association.
        #[derive(Default)]
        struct OneShot(HashMap<(CAddr, String), CAddr>);
        impl TrackerHook for OneShot {
            fn lookup(&mut self, remote: CAddr, type_name: &str) -> Option<CAddr> {
                self.0.get(&(remote, type_name.to_string())).copied()
            }
            fn associate(&mut self, remote: CAddr, type_name: &str, local: CAddr) {
                self.0.insert((remote, type_name.to_string()), local);
            }
        }

        let mut tracker = OneShot::default();
        let mut dst = ObjHeap::with_base(0x9000_0000);
        let masks = MaskSet::full();

        let bytes = marshal_graph(&src, Some(a), &s, &masks, Direction::In).unwrap();
        let first = unmarshal_graph(
            &bytes,
            "shared",
            &mut dst,
            &s,
            &masks,
            Direction::In,
            &mut tracker,
        )
        .unwrap()
        .unwrap();

        // Sender mutates and transfers again: the same local object updates.
        src.set_scalar(a, "token", XdrValue::Int(42)).unwrap();
        let bytes = marshal_graph(&src, Some(a), &s, &masks, Direction::In).unwrap();
        let second = unmarshal_graph(
            &bytes,
            "shared",
            &mut dst,
            &s,
            &masks,
            Direction::In,
            &mut tracker,
        )
        .unwrap()
        .unwrap();
        assert_eq!(first, second, "tracker hit must reuse the local object");
        assert_eq!(dst.len(), 1);
        assert_eq!(dst.scalar(first, "token").unwrap(), &XdrValue::Int(42));
    }

    #[test]
    fn field_masks_limit_what_crosses() {
        let s = spec();
        let mut src = ObjHeap::new();
        let shared = src.alloc(
            "shared",
            vec![("token".into(), FieldVal::Scalar(XdrValue::Int(9)))],
        );
        let r = src.alloc(
            "ring",
            vec![
                ("id".into(), FieldVal::Scalar(XdrValue::Int(5))),
                ("owner".into(), FieldVal::Ptr(Some(shared))),
            ],
        );

        let mut masks = MaskSet::selective();
        let mut ring_mask = crate::mask::FieldMask::new();
        ring_mask.record("id", crate::mask::Access::Read);
        // `owner` is not accessed by the target: the pointer (and the whole
        // shared struct) must not cross.
        masks.insert("ring", ring_mask);

        let selective = marshal_graph(&src, Some(r), &s, &masks, Direction::In).unwrap();
        let full = marshal_graph(&src, Some(r), &s, &MaskSet::full(), Direction::In).unwrap();
        assert!(selective.len() < full.len());

        let mut dst = ObjHeap::with_base(0x9000_0000);
        let root = unmarshal_graph(
            &selective,
            "ring",
            &mut dst,
            &s,
            &masks,
            Direction::In,
            &mut NullTracker,
        )
        .unwrap()
        .unwrap();
        assert_eq!(dst.scalar(root, "id").unwrap(), &XdrValue::Int(5));
        assert_eq!(
            dst.ptr(root, "owner").unwrap(),
            None,
            "masked pointer defaults to null"
        );
        assert_eq!(dst.len(), 1, "shared struct must not be transferred");
    }

    #[test]
    fn null_root_roundtrip() {
        let s = spec();
        let src = ObjHeap::new();
        let bytes = marshal_graph(&src, None, &s, &MaskSet::full(), Direction::In).unwrap();
        assert_eq!(bytes, vec![0, 0, 0, 0]);
        let mut dst = ObjHeap::new();
        let root = unmarshal_graph(
            &bytes,
            "node",
            &mut dst,
            &s,
            &MaskSet::full(),
            Direction::In,
            &mut NullTracker,
        )
        .unwrap();
        assert_eq!(root, None);
    }

    #[test]
    fn bad_backref_rejected() {
        let s = spec();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&2u32.to_be_bytes());
        bytes.extend_from_slice(&5u32.to_be_bytes());
        let mut dst = ObjHeap::new();
        let err = unmarshal_graph(
            &bytes,
            "node",
            &mut dst,
            &s,
            &MaskSet::full(),
            Direction::In,
            &mut NullTracker,
        )
        .unwrap_err();
        assert_eq!(err, XdrError::BadBackRef(5));
    }

    #[test]
    fn dangling_pointer_detected_on_marshal() {
        let s = spec();
        let mut src = ObjHeap::new();
        let a = src.alloc(
            "node",
            vec![
                ("v".into(), FieldVal::Scalar(XdrValue::Int(1))),
                ("next".into(), FieldVal::Ptr(Some(0xdead_beef))),
            ],
        );
        let err = marshal_graph(&src, Some(a), &s, &MaskSet::full(), Direction::In).unwrap_err();
        assert_eq!(err, XdrError::DanglingAddr(0xdead_beef));
    }

    #[test]
    fn default_values_match_schema() {
        let s = spec();
        let v = default_value(&XdrType::Struct("node".into()), &s).unwrap();
        assert_eq!(v.field("v"), Some(&XdrValue::Int(0)));
        assert_eq!(v.field("next"), Some(&XdrValue::Optional(None)));
    }
}
