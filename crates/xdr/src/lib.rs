//! XDR marshaling for Decaf Drivers.
//!
//! This crate reimplements the marshaling layer of *Decaf: Moving Device
//! Drivers to a Modern Language* (Renzelmann & Swift, USENIX ATC 2009).
//! The paper marshals driver data structures between the kernel-mode
//! *driver nucleus* (C) and the user-mode *decaf driver* (Java) using the
//! XDR external data representation standard (RFC 4506), extended in three
//! ways (paper §3.2.3):
//!
//! 1. **Object tracking** — unmarshaling code consults an object tracker
//!    before allocating a structure, so a structure that already exists in
//!    the target domain is updated in place rather than duplicated.
//! 2. **Recursive data structures** — marshaling keeps a table of objects
//!    already serialized and emits a back-reference when an object is seen
//!    again, so circular linked lists terminate and a structure referenced
//!    by two parameters is transferred exactly once.
//! 3. **Field-selective copies** — only the fields actually accessed by the
//!    target domain are transferred (paper §2.3), directed by per-entry-point
//!    field masks derived from DriverSlicer's access analysis.
//!
//! The crate provides:
//!
//! * [`value::XdrValue`] — a dynamic value model.
//! * [`schema::XdrType`] / [`spec::XdrSpec`] — type descriptions and an XDR
//!   IDL front end (the language emitted by DriverSlicer, Figure 3).
//! * [`codec`] — the RFC 4506 wire format (big-endian, 4-byte alignment).
//! * [`graph`] — cycle-aware marshaling of object heaps with tracker hooks.
//! * [`mask`] — field-selective marshaling masks with R/W/RW directions.
//!
//! # Examples
//!
//! ```
//! use decaf_xdr::spec::XdrSpec;
//! use decaf_xdr::value::XdrValue;
//! use decaf_xdr::codec;
//!
//! let spec = XdrSpec::parse("struct pair { int a; unsigned hyper b; };").unwrap();
//! let ty = spec.named_type("pair").unwrap();
//! let v = XdrValue::structure("pair", vec![
//!     ("a", XdrValue::Int(-7)),
//!     ("b", XdrValue::UHyper(42)),
//! ]);
//! let bytes = codec::encode(&v, &ty, &spec).unwrap();
//! assert_eq!(bytes.len(), 12);
//! let back = codec::decode(&bytes, &ty, &spec).unwrap();
//! assert_eq!(v, back);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod error;
pub mod graph;
pub mod mask;
pub mod schema;
pub mod spec;
pub mod value;

pub use error::{XdrError, XdrResult};
pub use graph::{DeltaHook, DeltaStats, FieldVal, NoDelta, ObjHeap, StructObj, TrackerHook};
pub use mask::{Access, FieldMask};
pub use schema::XdrType;
pub use spec::XdrSpec;
pub use value::XdrValue;
