//! Field-selective marshaling masks.
//!
//! XPC "provides customized marshaling of data structures to copy only
//! those fields actually accessed at the target" (paper §2.3). DriverSlicer
//! derives, for every structure type crossing the boundary, the set of
//! fields the other domain reads and/or writes — from static access
//! analysis plus explicit `DECAF_XVAR` annotations (§3.2.4). Both sides of
//! an XPC consult the *same* mask, so the encoder may omit fields and the
//! decoder knows to skip them.

use std::collections::{BTreeMap, HashMap};

/// How the target domain accesses a field (the `X` in `DECAF_XVAR`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Target only reads the field: copied on the way in.
    Read,
    /// Target only writes the field: copied back on the way out.
    Write,
    /// Target reads and writes: copied both ways.
    ReadWrite,
}

/// Transfer direction relative to the *target* domain of a call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Arguments travelling into the target domain (target will read).
    In,
    /// Results travelling back out of the target domain (target wrote).
    Out,
}

impl Access {
    /// Whether a field with this access is transferred in `dir`.
    pub fn transferred(self, dir: Direction) -> bool {
        matches!(
            (self, dir),
            (Access::Read, Direction::In)
                | (Access::Write, Direction::Out)
                | (Access::ReadWrite, _)
        )
    }
}

/// Per-structure field mask: field name → access mode.
///
/// Fields absent from the mask are never transferred. This mirrors the
/// paper's behaviour where "structures defined for the kernel's internal
/// use but shared with drivers are passed with only the driver-accessed
/// fields".
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FieldMask {
    entries: BTreeMap<String, Access>,
}

impl FieldMask {
    /// An empty mask (no fields transferred).
    pub fn new() -> Self {
        FieldMask::default()
    }

    /// Builds a mask from `(field, access)` pairs.
    pub fn from_entries(entries: impl IntoIterator<Item = (String, Access)>) -> Self {
        FieldMask {
            entries: entries.into_iter().collect(),
        }
    }

    /// Marks a field with an access mode, widening if already present.
    ///
    /// Widening means `Read` + `Write` → `ReadWrite`, matching repeated
    /// `DECAF_RVAR`/`DECAF_WVAR` annotations on the same variable.
    pub fn record(&mut self, field: impl Into<String>, access: Access) {
        let field = field.into();
        let widened = match (self.entries.get(&field), access) {
            (None, a) => a,
            (Some(existing), a) if *existing == a => a,
            _ => Access::ReadWrite,
        };
        self.entries.insert(field, widened);
    }

    /// Whether `field` is transferred in `dir`.
    pub fn includes(&self, field: &str, dir: Direction) -> bool {
        self.entries.get(field).is_some_and(|a| a.transferred(dir))
    }

    /// The recorded access for `field`, if any.
    pub fn access(&self, field: &str) -> Option<Access> {
        self.entries.get(field).copied()
    }

    /// Number of fields in the mask.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the mask transfers nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(field, access)` in field-name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Access)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), *v))
    }
}

/// The mask policy for a whole interface: per-type masks, or full copies.
///
/// `Full` reproduces naive RPC marshaling (every declared field both ways)
/// and exists so the field-selectivity ablation bench can compare the two.
#[derive(Debug, Clone, Default)]
pub struct MaskSet {
    masks: HashMap<String, FieldMask>,
    /// When true, types without an explicit mask transfer all fields.
    full_by_default: bool,
}

impl MaskSet {
    /// A mask set that transfers every field of every type (no selectivity).
    pub fn full() -> Self {
        MaskSet {
            masks: HashMap::new(),
            full_by_default: true,
        }
    }

    /// A selective mask set: unlisted types transfer nothing.
    pub fn selective() -> Self {
        MaskSet {
            masks: HashMap::new(),
            full_by_default: false,
        }
    }

    /// Installs the mask for a structure type.
    pub fn insert(&mut self, type_name: impl Into<String>, mask: FieldMask) {
        self.masks.insert(type_name.into(), mask);
    }

    /// The mask registered for `type_name`, if any.
    pub fn mask(&self, type_name: &str) -> Option<&FieldMask> {
        self.masks.get(type_name)
    }

    /// Whether `field` of `type_name` is transferred in `dir`.
    pub fn includes(&self, type_name: &str, field: &str, dir: Direction) -> bool {
        match self.masks.get(type_name) {
            Some(mask) => mask.includes(field, dir),
            None => self.full_by_default,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_direction_matrix() {
        assert!(Access::Read.transferred(Direction::In));
        assert!(!Access::Read.transferred(Direction::Out));
        assert!(!Access::Write.transferred(Direction::In));
        assert!(Access::Write.transferred(Direction::Out));
        assert!(Access::ReadWrite.transferred(Direction::In));
        assert!(Access::ReadWrite.transferred(Direction::Out));
    }

    #[test]
    fn record_widens_access() {
        let mut m = FieldMask::new();
        m.record("x", Access::Read);
        assert_eq!(m.access("x"), Some(Access::Read));
        m.record("x", Access::Write);
        assert_eq!(m.access("x"), Some(Access::ReadWrite));
        m.record("y", Access::Write);
        m.record("y", Access::Write);
        assert_eq!(m.access("y"), Some(Access::Write));
    }

    #[test]
    fn full_and_selective_defaults() {
        let full = MaskSet::full();
        assert!(full.includes("anything", "field", Direction::In));
        let sel = MaskSet::selective();
        assert!(!sel.includes("anything", "field", Direction::In));
    }

    #[test]
    fn selective_lookup() {
        let mut set = MaskSet::selective();
        let mut m = FieldMask::new();
        m.record("msg_enable", Access::Read);
        m.record("stats", Access::Write);
        set.insert("e1000_adapter", m);
        assert!(set.includes("e1000_adapter", "msg_enable", Direction::In));
        assert!(!set.includes("e1000_adapter", "msg_enable", Direction::Out));
        assert!(set.includes("e1000_adapter", "stats", Direction::Out));
        assert!(!set.includes("e1000_adapter", "unlisted", Direction::In));
    }
}
