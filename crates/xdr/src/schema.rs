//! XDR type descriptions and value validation.

use crate::error::{XdrError, XdrResult};
use crate::spec::XdrSpec;
use crate::value::XdrValue;

/// A description of an XDR type (RFC 4506 §4).
///
/// Named struct and enum types are resolved through an
/// [`XdrSpec`]; everything else is structural.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XdrType {
    /// `void` — zero bytes.
    Void,
    /// 32-bit signed integer.
    Int,
    /// 32-bit unsigned integer.
    UInt,
    /// 64-bit signed integer.
    Hyper,
    /// 64-bit unsigned integer.
    UHyper,
    /// Boolean.
    Bool,
    /// Single-precision float.
    Float,
    /// Double-precision float.
    Double,
    /// Named enum type; members live in the spec.
    Enum(String),
    /// Fixed-length opaque data of exactly `n` bytes.
    OpaqueFixed(usize),
    /// Variable-length opaque data with optional maximum.
    OpaqueVar(Option<usize>),
    /// String with optional maximum byte length.
    Str(Option<usize>),
    /// Fixed-length array of `n` elements.
    ArrayFixed(Box<XdrType>, usize),
    /// Variable-length array with optional maximum element count.
    ArrayVar(Box<XdrType>, Option<usize>),
    /// Named struct type; fields live in the spec.
    Struct(String),
    /// Optional datum (`*` declarator).
    Optional(Box<XdrType>),
    /// A named type to be resolved through the spec (typedef alias).
    Named(String),
}

impl XdrType {
    /// Renders the type in XDR IDL syntax (field name supplied by caller).
    pub fn idl(&self) -> String {
        match self {
            XdrType::Void => "void".into(),
            XdrType::Int => "int".into(),
            XdrType::UInt => "unsigned int".into(),
            XdrType::Hyper => "hyper".into(),
            XdrType::UHyper => "unsigned hyper".into(),
            XdrType::Bool => "bool".into(),
            XdrType::Float => "float".into(),
            XdrType::Double => "double".into(),
            XdrType::Enum(n) => format!("enum {n}"),
            XdrType::OpaqueFixed(n) => format!("opaque[{n}]"),
            XdrType::OpaqueVar(Some(m)) => format!("opaque<{m}>"),
            XdrType::OpaqueVar(None) => "opaque<>".into(),
            XdrType::Str(Some(m)) => format!("string<{m}>"),
            XdrType::Str(None) => "string<>".into(),
            XdrType::ArrayFixed(t, n) => format!("{}[{n}]", t.idl()),
            XdrType::ArrayVar(t, Some(m)) => format!("{}<{m}>", t.idl()),
            XdrType::ArrayVar(t, None) => format!("{}<>", t.idl()),
            XdrType::Struct(n) => format!("struct {n}"),
            XdrType::Optional(t) => format!("{} *", t.idl()),
            XdrType::Named(n) => n.clone(),
        }
    }

    /// Validates `value` against this type, resolving names via `spec`.
    ///
    /// Returns the first mismatch found, or `Ok(())` if the value conforms.
    pub fn validate(&self, value: &XdrValue, spec: &XdrSpec) -> XdrResult<()> {
        let mismatch = |found: &XdrValue| {
            Err(XdrError::TypeMismatch {
                expected: self.idl(),
                found: found.kind().to_string(),
            })
        };
        match (self, value) {
            (XdrType::Void, XdrValue::Void) => Ok(()),
            (XdrType::Int, XdrValue::Int(_)) => Ok(()),
            (XdrType::UInt, XdrValue::UInt(_)) => Ok(()),
            (XdrType::Hyper, XdrValue::Hyper(_)) => Ok(()),
            (XdrType::UHyper, XdrValue::UHyper(_)) => Ok(()),
            (XdrType::Bool, XdrValue::Bool(_)) => Ok(()),
            (XdrType::Float, XdrValue::Float(_)) => Ok(()),
            (XdrType::Double, XdrValue::Double(_)) => Ok(()),
            (XdrType::Enum(name), XdrValue::Enum(v)) => {
                if spec.enum_members(name)?.iter().any(|(_, m)| m == v) {
                    Ok(())
                } else {
                    Err(XdrError::InvalidEnumValue {
                        type_name: name.clone(),
                        value: *v,
                    })
                }
            }
            (XdrType::OpaqueFixed(n), XdrValue::Opaque(b)) => {
                if b.len() == *n {
                    Ok(())
                } else {
                    Err(XdrError::LengthMismatch {
                        expected: *n,
                        found: b.len(),
                    })
                }
            }
            (XdrType::OpaqueVar(max), XdrValue::Opaque(b)) => check_max(*max, b.len()),
            (XdrType::Str(max), XdrValue::Str(s)) => check_max(*max, s.len()),
            (XdrType::ArrayFixed(elem, n), XdrValue::Array(items)) => {
                if items.len() != *n {
                    return Err(XdrError::LengthMismatch {
                        expected: *n,
                        found: items.len(),
                    });
                }
                items.iter().try_for_each(|i| elem.validate(i, spec))
            }
            (XdrType::ArrayVar(elem, max), XdrValue::Array(items)) => {
                check_max(*max, items.len())?;
                items.iter().try_for_each(|i| elem.validate(i, spec))
            }
            (XdrType::Struct(name), XdrValue::Struct { type_name, fields }) => {
                if name != type_name {
                    return Err(XdrError::TypeMismatch {
                        expected: self.idl(),
                        found: format!("struct {type_name}"),
                    });
                }
                let decl = spec.struct_fields(name)?;
                if decl.len() != fields.len() {
                    return Err(XdrError::LengthMismatch {
                        expected: decl.len(),
                        found: fields.len(),
                    });
                }
                for ((dn, dt), (fname, fval)) in decl.iter().zip(fields.iter()) {
                    if dn != fname {
                        return Err(XdrError::UnknownField {
                            type_name: name.clone(),
                            field: fname.clone(),
                        });
                    }
                    dt.validate(fval, spec)?;
                }
                Ok(())
            }
            (XdrType::Optional(_), XdrValue::Optional(None)) => Ok(()),
            (XdrType::Optional(inner), XdrValue::Optional(Some(v))) => inner.validate(v, spec),
            (XdrType::Named(name), v) => spec.resolve(name)?.validate(v, spec),
            (_, found) => mismatch(found),
        }
    }

    /// Returns the size in bytes of a value of this type on the wire, if the
    /// type has a fixed size independent of the value.
    pub fn fixed_wire_size(&self, spec: &XdrSpec) -> Option<usize> {
        match self {
            XdrType::Void => Some(0),
            XdrType::Int | XdrType::UInt | XdrType::Bool | XdrType::Float | XdrType::Enum(_) => {
                Some(4)
            }
            XdrType::Hyper | XdrType::UHyper | XdrType::Double => Some(8),
            XdrType::OpaqueFixed(n) => Some(n.div_ceil(4) * 4),
            XdrType::ArrayFixed(elem, n) => elem.fixed_wire_size(spec).map(|s| s * n),
            XdrType::Struct(name) => {
                let fields = spec.struct_fields(name).ok()?;
                let mut total = 0;
                for (_, t) in fields {
                    total += t.fixed_wire_size(spec)?;
                }
                Some(total)
            }
            XdrType::Named(name) => spec.resolve(name).ok()?.fixed_wire_size(spec),
            _ => None,
        }
    }
}

fn check_max(max: Option<usize>, found: usize) -> XdrResult<()> {
    match max {
        Some(m) if found > m => Err(XdrError::MaxExceeded { max: m, found }),
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> XdrSpec {
        XdrSpec::parse(
            "enum color { RED = 0, BLUE = 1 };\n\
             struct point { int x; int y; };\n\
             struct node { int v; struct node *next; };",
        )
        .unwrap()
    }

    #[test]
    fn scalar_validation() {
        let s = spec();
        assert!(XdrType::Int.validate(&XdrValue::Int(1), &s).is_ok());
        assert!(XdrType::Int.validate(&XdrValue::UInt(1), &s).is_err());
        assert!(XdrType::Bool.validate(&XdrValue::Bool(false), &s).is_ok());
    }

    #[test]
    fn enum_membership_checked() {
        let s = spec();
        let t = XdrType::Enum("color".into());
        assert!(t.validate(&XdrValue::Enum(1), &s).is_ok());
        assert_eq!(
            t.validate(&XdrValue::Enum(9), &s),
            Err(XdrError::InvalidEnumValue {
                type_name: "color".into(),
                value: 9
            })
        );
    }

    #[test]
    fn struct_field_order_and_names_enforced() {
        let s = spec();
        let t = XdrType::Struct("point".into());
        let ok = XdrValue::structure(
            "point",
            vec![("x", XdrValue::Int(1)), ("y", XdrValue::Int(2))],
        );
        assert!(t.validate(&ok, &s).is_ok());
        let bad = XdrValue::structure(
            "point",
            vec![("y", XdrValue::Int(2)), ("x", XdrValue::Int(1))],
        );
        assert!(t.validate(&bad, &s).is_err());
    }

    #[test]
    fn optional_and_recursive_types() {
        let s = spec();
        let t = XdrType::Struct("node".into());
        let v = XdrValue::structure(
            "node",
            vec![
                ("v", XdrValue::Int(1)),
                (
                    "next",
                    XdrValue::Optional(Some(Box::new(XdrValue::structure(
                        "node",
                        vec![("v", XdrValue::Int(2)), ("next", XdrValue::Optional(None))],
                    )))),
                ),
            ],
        );
        assert!(t.validate(&v, &s).is_ok());
    }

    #[test]
    fn fixed_wire_sizes() {
        let s = spec();
        assert_eq!(XdrType::Struct("point".into()).fixed_wire_size(&s), Some(8));
        assert_eq!(XdrType::OpaqueFixed(5).fixed_wire_size(&s), Some(8));
        assert_eq!(XdrType::Str(None).fixed_wire_size(&s), None);
        // Recursive struct has no fixed size (contains an optional).
        assert_eq!(XdrType::Struct("node".into()).fixed_wire_size(&s), None);
    }

    #[test]
    fn length_limits() {
        let s = spec();
        assert!(XdrType::OpaqueVar(Some(2))
            .validate(&XdrValue::Opaque(vec![0; 3]), &s)
            .is_err());
        assert!(XdrType::Str(Some(3))
            .validate(&XdrValue::Str("abcd".into()), &s)
            .is_err());
        assert!(XdrType::OpaqueFixed(4)
            .validate(&XdrValue::Opaque(vec![0; 4]), &s)
            .is_ok());
    }
}
