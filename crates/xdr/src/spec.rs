//! XDR IDL front end: the specification language emitted by DriverSlicer.
//!
//! DriverSlicer generates an XDR interface specification for every data type
//! crossing the nucleus/decaf boundary (paper §3.2.2, Figure 3). This module
//! parses that language — a subset of RFC 4506 §6 grammar covering consts,
//! typedefs, enums and structs with pointer, fixed-array and
//! variable-array declarators — into an [`XdrSpec`] usable by the codec.

use std::collections::HashMap;

use crate::error::{XdrError, XdrResult};
use crate::schema::XdrType;

/// A named type definition inside a spec.
#[derive(Debug, Clone, PartialEq)]
pub enum TypeDef {
    /// Struct with ordered fields.
    Struct(Vec<(String, XdrType)>),
    /// Enum with named members.
    Enum(Vec<(String, i32)>),
    /// Typedef alias.
    Alias(XdrType),
}

/// A parsed XDR interface specification: consts plus named types.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct XdrSpec {
    consts: HashMap<String, u64>,
    types: HashMap<String, TypeDef>,
    /// Declaration order, for faithful re-rendering.
    order: Vec<String>,
}

impl XdrSpec {
    /// An empty spec (no named types).
    pub fn empty() -> Self {
        XdrSpec::default()
    }

    /// Parses XDR IDL source.
    ///
    /// # Examples
    ///
    /// ```
    /// use decaf_xdr::spec::XdrSpec;
    /// let spec = XdrSpec::parse(
    ///     "const LEN = 4; struct s { int a[LEN]; struct s *next; };",
    /// ).unwrap();
    /// assert!(spec.struct_fields("s").is_ok());
    /// ```
    pub fn parse(src: &str) -> XdrResult<Self> {
        Parser::new(src)?.parse_spec()
    }

    /// Number of named types defined.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the spec defines no types.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Names of defined types, in declaration order.
    pub fn type_names(&self) -> impl Iterator<Item = &str> {
        self.order.iter().map(String::as_str)
    }

    /// Looks up a constant.
    pub fn constant(&self, name: &str) -> Option<u64> {
        self.consts.get(name).copied()
    }

    /// Defines a constant programmatically.
    pub fn define_const(&mut self, name: impl Into<String>, value: u64) {
        self.consts.insert(name.into(), value);
    }

    /// Defines a struct programmatically (used by the slicer's generator).
    pub fn define_struct(&mut self, name: impl Into<String>, fields: Vec<(String, XdrType)>) {
        let name = name.into();
        if !self.types.contains_key(&name) {
            self.order.push(name.clone());
        }
        self.types.insert(name, TypeDef::Struct(fields));
    }

    /// Defines an enum programmatically.
    pub fn define_enum(&mut self, name: impl Into<String>, members: Vec<(String, i32)>) {
        let name = name.into();
        if !self.types.contains_key(&name) {
            self.order.push(name.clone());
        }
        self.types.insert(name, TypeDef::Enum(members));
    }

    /// Defines a typedef alias programmatically.
    pub fn define_alias(&mut self, name: impl Into<String>, ty: XdrType) {
        let name = name.into();
        if !self.types.contains_key(&name) {
            self.order.push(name.clone());
        }
        self.types.insert(name, TypeDef::Alias(ty));
    }

    /// Returns the `XdrType` denoted by a type name.
    ///
    /// Structs resolve to [`XdrType::Struct`], enums to [`XdrType::Enum`],
    /// aliases to their (recursively resolved) target.
    pub fn named_type(&self, name: &str) -> XdrResult<XdrType> {
        match self.types.get(name) {
            Some(TypeDef::Struct(_)) => Ok(XdrType::Struct(name.to_string())),
            Some(TypeDef::Enum(_)) => Ok(XdrType::Enum(name.to_string())),
            Some(TypeDef::Alias(_)) => self.resolve(name),
            None => Err(XdrError::UnknownType(name.to_string())),
        }
    }

    /// Resolves a name to a concrete type, following alias chains.
    pub fn resolve(&self, name: &str) -> XdrResult<XdrType> {
        let mut current = name.to_string();
        // Alias chains are finite in well-formed specs; cap to be safe.
        for _ in 0..64 {
            match self.types.get(&current) {
                Some(TypeDef::Struct(_)) => return Ok(XdrType::Struct(current)),
                Some(TypeDef::Enum(_)) => return Ok(XdrType::Enum(current)),
                Some(TypeDef::Alias(XdrType::Named(next))) => current = next.clone(),
                Some(TypeDef::Alias(t)) => return Ok(t.clone()),
                None => return Err(XdrError::UnknownType(current)),
            }
        }
        Err(XdrError::UnknownType(format!("{name} (alias cycle)")))
    }

    /// The ordered fields of a named struct.
    pub fn struct_fields(&self, name: &str) -> XdrResult<&[(String, XdrType)]> {
        match self.types.get(name) {
            Some(TypeDef::Struct(fields)) => Ok(fields),
            Some(_) => Err(XdrError::TypeMismatch {
                expected: format!("struct {name}"),
                found: "non-struct type".into(),
            }),
            None => Err(XdrError::UnknownType(name.to_string())),
        }
    }

    /// The members of a named enum.
    pub fn enum_members(&self, name: &str) -> XdrResult<&[(String, i32)]> {
        match self.types.get(name) {
            Some(TypeDef::Enum(members)) => Ok(members),
            Some(_) => Err(XdrError::TypeMismatch {
                expected: format!("enum {name}"),
                found: "non-enum type".into(),
            }),
            None => Err(XdrError::UnknownType(name.to_string())),
        }
    }

    /// Renders the whole spec back to XDR IDL text (declaration order).
    pub fn to_idl(&self) -> String {
        let mut out = String::new();
        for name in &self.order {
            match &self.types[name] {
                TypeDef::Struct(fields) => {
                    out.push_str(&format!("struct {name} {{\n"));
                    for (fname, fty) in fields {
                        out.push_str(&format!("    {};\n", field_idl(fname, fty)));
                    }
                    out.push_str("};\n");
                }
                TypeDef::Enum(members) => {
                    out.push_str(&format!("enum {name} {{\n"));
                    for (i, (mname, mval)) in members.iter().enumerate() {
                        let sep = if i + 1 == members.len() { "" } else { "," };
                        out.push_str(&format!("    {mname} = {mval}{sep}\n"));
                    }
                    out.push_str("};\n");
                }
                TypeDef::Alias(ty) => {
                    out.push_str(&format!("typedef {};\n", field_idl(name, ty)));
                }
            }
        }
        out
    }
}

/// Renders a single field declaration in IDL syntax.
fn field_idl(name: &str, ty: &XdrType) -> String {
    match ty {
        XdrType::Optional(inner) => format!("{} *{name}", base_idl(inner)),
        XdrType::OpaqueFixed(n) => format!("opaque {name}[{n}]"),
        XdrType::OpaqueVar(Some(m)) => format!("opaque {name}<{m}>"),
        XdrType::OpaqueVar(None) => format!("opaque {name}<>"),
        XdrType::Str(Some(m)) => format!("string {name}<{m}>"),
        XdrType::Str(None) => format!("string {name}<>"),
        XdrType::ArrayFixed(elem, n) => format!("{} {name}[{n}]", base_idl(elem)),
        XdrType::ArrayVar(elem, Some(m)) => format!("{} {name}<{m}>", base_idl(elem)),
        XdrType::ArrayVar(elem, None) => format!("{} {name}<>", base_idl(elem)),
        other => format!("{} {name}", base_idl(other)),
    }
}

fn base_idl(ty: &XdrType) -> String {
    match ty {
        XdrType::Named(n) => n.clone(),
        other => other.idl(),
    }
}

// ---------------------------------------------------------------------------
// Lexer and parser
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Num(i64),
    Punct(char),
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
    spec: XdrSpec,
}

impl Parser {
    fn new(src: &str) -> XdrResult<Self> {
        Ok(Parser {
            toks: lex(src)?,
            pos: 0,
            spec: XdrSpec::empty(),
        })
    }

    fn err(&self, message: impl Into<String>) -> XdrError {
        let line = self
            .toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map_or(1, |t| t.1);
        XdrError::SpecParse {
            line,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn next(&mut self) -> XdrResult<Tok> {
        let t = self
            .toks
            .get(self.pos)
            .cloned()
            .ok_or_else(|| self.err("unexpected end"))?;
        self.pos += 1;
        Ok(t.0)
    }

    fn eat_punct(&mut self, c: char) -> XdrResult<()> {
        match self.next()? {
            Tok::Punct(p) if p == c => Ok(()),
            other => Err(self.err(format!("expected `{c}`, found {other:?}"))),
        }
    }

    fn eat_ident(&mut self) -> XdrResult<String> {
        match self.next()? {
            Tok::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn try_punct(&mut self, c: char) -> bool {
        if self.peek() == Some(&Tok::Punct(c)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn parse_spec(mut self) -> XdrResult<XdrSpec> {
        while self.peek().is_some() {
            let kw = self.eat_ident()?;
            match kw.as_str() {
                "const" => self.parse_const()?,
                "typedef" => self.parse_typedef()?,
                "struct" => self.parse_struct()?,
                "enum" => self.parse_enum()?,
                other => return Err(self.err(format!("unexpected top-level `{other}`"))),
            }
        }
        Ok(self.spec)
    }

    fn parse_const(&mut self) -> XdrResult<()> {
        let name = self.eat_ident()?;
        self.eat_punct('=')?;
        let value = self.parse_number()?;
        self.eat_punct(';')?;
        self.spec.define_const(name, value as u64);
        Ok(())
    }

    fn parse_number(&mut self) -> XdrResult<i64> {
        match self.next()? {
            Tok::Num(n) => Ok(n),
            Tok::Punct('-') => match self.next()? {
                Tok::Num(n) => Ok(-n),
                other => Err(self.err(format!("expected number, found {other:?}"))),
            },
            other => Err(self.err(format!("expected number, found {other:?}"))),
        }
    }

    fn parse_len(&mut self) -> XdrResult<usize> {
        match self.next()? {
            Tok::Num(n) if n >= 0 => Ok(n as usize),
            Tok::Ident(name) => self
                .spec
                .constant(&name)
                .map(|v| v as usize)
                .ok_or_else(|| self.err(format!("unknown constant `{name}`"))),
            other => Err(self.err(format!("expected length, found {other:?}"))),
        }
    }

    fn parse_typedef(&mut self) -> XdrResult<()> {
        let base = self.parse_type_spec()?;
        let (name, ty) = self.parse_declarator(base)?;
        self.eat_punct(';')?;
        self.spec.define_alias(name, ty);
        Ok(())
    }

    fn parse_struct(&mut self) -> XdrResult<()> {
        let name = self.eat_ident()?;
        self.eat_punct('{')?;
        let mut fields = Vec::new();
        while !self.try_punct('}') {
            let base = self.parse_type_spec()?;
            let (fname, fty) = self.parse_declarator(base)?;
            self.eat_punct(';')?;
            fields.push((fname, fty));
        }
        self.eat_punct(';')?;
        self.spec.define_struct(name, fields);
        Ok(())
    }

    fn parse_enum(&mut self) -> XdrResult<()> {
        let name = self.eat_ident()?;
        self.eat_punct('{')?;
        let mut members = Vec::new();
        loop {
            let mname = self.eat_ident()?;
            self.eat_punct('=')?;
            let mval = self.parse_number()? as i32;
            members.push((mname, mval));
            if !self.try_punct(',') {
                break;
            }
        }
        self.eat_punct('}')?;
        self.eat_punct(';')?;
        self.spec.define_enum(name, members);
        Ok(())
    }

    /// Parses a type specifier. `opaque` and `string` return placeholder
    /// types refined by the declarator's `[n]`/`<n>` suffix.
    fn parse_type_spec(&mut self) -> XdrResult<XdrType> {
        let kw = self.eat_ident()?;
        Ok(match kw.as_str() {
            "void" => XdrType::Void,
            "int" => XdrType::Int,
            "hyper" => XdrType::Hyper,
            "bool" => XdrType::Bool,
            "float" => XdrType::Float,
            "double" => XdrType::Double,
            "opaque" => XdrType::OpaqueVar(None), // refined by declarator
            "string" => XdrType::Str(None),       // refined by declarator
            "unsigned" => match self.peek() {
                Some(Tok::Ident(w)) if w == "int" => {
                    self.pos += 1;
                    XdrType::UInt
                }
                Some(Tok::Ident(w)) if w == "hyper" => {
                    self.pos += 1;
                    XdrType::UHyper
                }
                _ => XdrType::UInt,
            },
            "struct" => XdrType::Struct(self.eat_ident()?),
            "enum" => XdrType::Enum(self.eat_ident()?),
            other => XdrType::Named(other.to_string()),
        })
    }

    fn parse_declarator(&mut self, base: XdrType) -> XdrResult<(String, XdrType)> {
        let pointer = self.try_punct('*');
        let name = self.eat_ident()?;
        let mut ty = if self.try_punct('[') {
            let n = self.parse_len()?;
            self.eat_punct(']')?;
            match base {
                XdrType::OpaqueVar(_) => XdrType::OpaqueFixed(n),
                XdrType::Str(_) => {
                    return Err(self.err("string cannot have a fixed-length declarator"))
                }
                elem => XdrType::ArrayFixed(Box::new(elem), n),
            }
        } else if self.try_punct('<') {
            let max = if self.peek() == Some(&Tok::Punct('>')) {
                None
            } else {
                Some(self.parse_len()?)
            };
            self.eat_punct('>')?;
            match base {
                XdrType::OpaqueVar(_) => XdrType::OpaqueVar(max),
                XdrType::Str(_) => XdrType::Str(max),
                elem => XdrType::ArrayVar(Box::new(elem), max),
            }
        } else {
            base
        };
        if pointer {
            ty = XdrType::Optional(Box::new(ty));
        }
        Ok((name, ty))
    }
}

fn lex(src: &str) -> XdrResult<Vec<(Tok, usize)>> {
    let mut toks = Vec::new();
    let mut line = 1usize;
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&'/') => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&'*') => {
                i += 2;
                while i + 1 < bytes.len() && !(bytes[i] == '*' && bytes[i + 1] == '/') {
                    if bytes[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
                i = (i + 2).min(bytes.len());
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                toks.push((Tok::Ident(bytes[start..i].iter().collect()), line));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let hex = c == '0' && bytes.get(i + 1).is_some_and(|&n| n == 'x' || n == 'X');
                if hex {
                    i += 2;
                }
                while i < bytes.len() {
                    let digit = if hex {
                        bytes[i].is_ascii_hexdigit()
                    } else {
                        bytes[i].is_ascii_digit()
                    };
                    if !digit {
                        break;
                    }
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                let value = if hex {
                    i64::from_str_radix(&text[2..], 16)
                } else {
                    text.parse::<i64>()
                }
                .map_err(|_| XdrError::SpecParse {
                    line,
                    message: format!("bad number `{text}`"),
                })?;
                toks.push((Tok::Num(value), line));
            }
            '{' | '}' | ';' | '*' | '[' | ']' | '<' | '>' | '=' | ',' | '-' => {
                toks.push((Tok::Punct(c), line));
                i += 1;
            }
            other => {
                return Err(XdrError::SpecParse {
                    line,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_consts_and_arrays() {
        let spec =
            XdrSpec::parse("const PCI_LEN = 256; struct cfg { unsigned int space[PCI_LEN]; };")
                .unwrap();
        assert_eq!(spec.constant("PCI_LEN"), Some(256));
        let fields = spec.struct_fields("cfg").unwrap();
        assert_eq!(
            fields[0].1,
            XdrType::ArrayFixed(Box::new(XdrType::UInt), 256)
        );
    }

    #[test]
    fn parses_figure3_style_input() {
        // The structure DriverSlicer generates for e1000_adapter (Figure 3).
        let src = "
            struct array256_uint32_t { unsigned int array[256]; };
            typedef struct array256_uint32_t *array256_uint32_ptr;
            struct e1000_adapter_autoxdr_c {
                array256_uint32_ptr config_space;
                int msg_enable;
            };
        ";
        let spec = XdrSpec::parse(src).unwrap();
        let fields = spec.struct_fields("e1000_adapter_autoxdr_c").unwrap();
        assert_eq!(fields[0].0, "config_space");
        // The alias resolves to an optional pointer to the wrapper struct.
        let resolved = spec.resolve("array256_uint32_ptr").unwrap();
        assert_eq!(
            resolved,
            XdrType::Optional(Box::new(XdrType::Struct("array256_uint32_t".into())))
        );
        assert_eq!(fields[1].1, XdrType::Int);
    }

    #[test]
    fn parses_hyper_and_unsigned_variants() {
        let spec = XdrSpec::parse("struct t { hyper a; unsigned hyper b; unsigned c; };").unwrap();
        let f = spec.struct_fields("t").unwrap();
        assert_eq!(f[0].1, XdrType::Hyper);
        assert_eq!(f[1].1, XdrType::UHyper);
        assert_eq!(f[2].1, XdrType::UInt);
    }

    #[test]
    fn parses_strings_opaque_and_pointers() {
        let spec = XdrSpec::parse(
            "struct s { opaque mac[6]; opaque buf<1500>; string name<>; struct s *next; };",
        )
        .unwrap();
        let f = spec.struct_fields("s").unwrap();
        assert_eq!(f[0].1, XdrType::OpaqueFixed(6));
        assert_eq!(f[1].1, XdrType::OpaqueVar(Some(1500)));
        assert_eq!(f[2].1, XdrType::Str(None));
        assert_eq!(
            f[3].1,
            XdrType::Optional(Box::new(XdrType::Struct("s".into())))
        );
    }

    #[test]
    fn comments_and_hex_numbers() {
        let spec = XdrSpec::parse(
            "// line comment\n/* block\ncomment */ const MASK = 0xff; struct a { int x; };",
        )
        .unwrap();
        assert_eq!(spec.constant("MASK"), Some(255));
        assert!(spec.struct_fields("a").is_ok());
    }

    #[test]
    fn enums_parse_and_render() {
        let spec = XdrSpec::parse("enum speed { S10 = 10, S100 = 100, S1000 = 1000 };").unwrap();
        assert_eq!(spec.enum_members("speed").unwrap().len(), 3);
        let idl = spec.to_idl();
        assert!(idl.contains("S1000 = 1000"));
        // Round-trip: rendered IDL parses to the same spec.
        let again = XdrSpec::parse(&idl).unwrap();
        assert_eq!(
            again.enum_members("speed").unwrap(),
            spec.enum_members("speed").unwrap()
        );
    }

    #[test]
    fn to_idl_roundtrips_structs() {
        let src = "struct node { int v; struct node *next; opaque raw<16>; };";
        let spec = XdrSpec::parse(src).unwrap();
        let rendered = spec.to_idl();
        let reparsed = XdrSpec::parse(&rendered).unwrap();
        assert_eq!(
            reparsed.struct_fields("node").unwrap(),
            spec.struct_fields("node").unwrap()
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = XdrSpec::parse("struct s {\n int 5bad;\n};").unwrap_err();
        match err {
            XdrError::SpecParse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn string_with_fixed_len_rejected() {
        assert!(XdrSpec::parse("struct s { string name[4]; };").is_err());
    }

    #[test]
    fn unknown_type_reported() {
        let spec = XdrSpec::parse("struct s { int a; };").unwrap();
        assert_eq!(
            spec.resolve("nope"),
            Err(XdrError::UnknownType("nope".into()))
        );
    }
}
