//! Dynamic XDR value model.

use std::fmt;

/// A dynamically typed XDR value.
///
/// Values are produced by decoding a byte stream against an
/// [`XdrType`](crate::schema::XdrType) and consumed by encoding. Driver
/// structures cross the kernel/user and C/Java (here: nucleus/decaf)
/// boundaries as trees of `XdrValue`s; graph-shaped data (cycles, sharing)
/// uses the [`graph`](crate::graph) module instead.
#[derive(Debug, Clone, PartialEq)]
pub enum XdrValue {
    /// The XDR `void` value (zero bytes on the wire).
    Void,
    /// 32-bit signed integer.
    Int(i32),
    /// 32-bit unsigned integer.
    UInt(u32),
    /// 64-bit signed integer (`hyper`).
    Hyper(i64),
    /// 64-bit unsigned integer (`unsigned hyper`).
    UHyper(u64),
    /// Boolean, encoded as a 32-bit 0 or 1.
    Bool(bool),
    /// IEEE 754 single-precision float.
    Float(f32),
    /// IEEE 754 double-precision float.
    Double(f64),
    /// Enum member, encoded as a 32-bit signed integer.
    Enum(i32),
    /// Opaque byte data (fixed- or variable-length per the schema).
    Opaque(Vec<u8>),
    /// ASCII/UTF-8 string.
    Str(String),
    /// Array of homogeneous values (fixed- or variable-length per schema).
    Array(Vec<XdrValue>),
    /// Structure: ordered `(field name, value)` pairs.
    Struct {
        /// Name of the struct type (matches the spec).
        type_name: String,
        /// Field values in declaration order.
        fields: Vec<(String, XdrValue)>,
    },
    /// Optional datum (`*` in XDR IDL); `None` encodes as discriminant 0.
    Optional(Option<Box<XdrValue>>),
}

impl XdrValue {
    /// Builds a struct value from `(name, value)` pairs.
    ///
    /// # Examples
    ///
    /// ```
    /// use decaf_xdr::value::XdrValue;
    /// let v = XdrValue::structure("point", vec![("x", XdrValue::Int(1))]);
    /// assert_eq!(v.field("x"), Some(&XdrValue::Int(1)));
    /// ```
    pub fn structure(
        type_name: impl Into<String>,
        fields: Vec<(impl Into<String>, XdrValue)>,
    ) -> Self {
        XdrValue::Struct {
            type_name: type_name.into(),
            fields: fields.into_iter().map(|(n, v)| (n.into(), v)).collect(),
        }
    }

    /// Returns the named field of a struct value, if present.
    pub fn field(&self, name: &str) -> Option<&XdrValue> {
        match self {
            XdrValue::Struct { fields, .. } => {
                fields.iter().find(|(n, _)| n == name).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// Returns a mutable reference to the named field of a struct value.
    pub fn field_mut(&mut self, name: &str) -> Option<&mut XdrValue> {
        match self {
            XdrValue::Struct { fields, .. } => {
                fields.iter_mut().find(|(n, _)| n == name).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// Replaces the named field, returning the previous value.
    ///
    /// Returns `None` (and does nothing) if `self` is not a struct or the
    /// field does not exist.
    pub fn set_field(&mut self, name: &str, value: XdrValue) -> Option<XdrValue> {
        self.field_mut(name)
            .map(|slot| std::mem::replace(slot, value))
    }

    /// A short, human-readable description of the value's kind.
    pub fn kind(&self) -> &'static str {
        match self {
            XdrValue::Void => "void",
            XdrValue::Int(_) => "int",
            XdrValue::UInt(_) => "unsigned int",
            XdrValue::Hyper(_) => "hyper",
            XdrValue::UHyper(_) => "unsigned hyper",
            XdrValue::Bool(_) => "bool",
            XdrValue::Float(_) => "float",
            XdrValue::Double(_) => "double",
            XdrValue::Enum(_) => "enum",
            XdrValue::Opaque(_) => "opaque",
            XdrValue::Str(_) => "string",
            XdrValue::Array(_) => "array",
            XdrValue::Struct { .. } => "struct",
            XdrValue::Optional(_) => "optional",
        }
    }

    /// Extracts an `i32`, accepting `Int` and `Enum` values.
    pub fn as_int(&self) -> Option<i32> {
        match self {
            XdrValue::Int(v) | XdrValue::Enum(v) => Some(*v),
            _ => None,
        }
    }

    /// Extracts a `u32` from a `UInt` value.
    pub fn as_uint(&self) -> Option<u32> {
        match self {
            XdrValue::UInt(v) => Some(*v),
            _ => None,
        }
    }

    /// Extracts a `u64` from a `UHyper` value.
    pub fn as_uhyper(&self) -> Option<u64> {
        match self {
            XdrValue::UHyper(v) => Some(*v),
            _ => None,
        }
    }

    /// Extracts a `bool` from a `Bool` value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            XdrValue::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// Extracts the string slice from a `Str` value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            XdrValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Extracts the bytes of an `Opaque` value.
    pub fn as_opaque(&self) -> Option<&[u8]> {
        match self {
            XdrValue::Opaque(b) => Some(b),
            _ => None,
        }
    }
}

impl fmt::Display for XdrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XdrValue::Void => write!(f, "void"),
            XdrValue::Int(v) => write!(f, "{v}"),
            XdrValue::UInt(v) => write!(f, "{v}u"),
            XdrValue::Hyper(v) => write!(f, "{v}h"),
            XdrValue::UHyper(v) => write!(f, "{v}uh"),
            XdrValue::Bool(v) => write!(f, "{v}"),
            XdrValue::Float(v) => write!(f, "{v}f"),
            XdrValue::Double(v) => write!(f, "{v}"),
            XdrValue::Enum(v) => write!(f, "enum({v})"),
            XdrValue::Opaque(b) => write!(f, "opaque[{}]", b.len()),
            XdrValue::Str(s) => write!(f, "{s:?}"),
            XdrValue::Array(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            XdrValue::Struct { type_name, fields } => {
                write!(f, "{type_name} {{ ")?;
                for (i, (name, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{name}: {value}")?;
                }
                write!(f, " }}")
            }
            XdrValue::Optional(None) => write!(f, "null"),
            XdrValue::Optional(Some(v)) => write!(f, "&{v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_builder_and_field_access() {
        let mut v = XdrValue::structure(
            "adapter",
            vec![
                ("msg_enable", XdrValue::Int(3)),
                ("mac", XdrValue::Opaque(vec![1, 2])),
            ],
        );
        assert_eq!(v.field("msg_enable"), Some(&XdrValue::Int(3)));
        assert_eq!(v.field("missing"), None);
        let old = v.set_field("msg_enable", XdrValue::Int(7)).unwrap();
        assert_eq!(old, XdrValue::Int(3));
        assert_eq!(v.field("msg_enable"), Some(&XdrValue::Int(7)));
    }

    #[test]
    fn accessors_reject_wrong_kinds() {
        assert_eq!(XdrValue::Int(1).as_uint(), None);
        assert_eq!(XdrValue::UInt(1).as_int(), None);
        assert_eq!(XdrValue::Bool(true).as_bool(), Some(true));
        assert_eq!(XdrValue::Str("x".into()).as_str(), Some("x"));
        assert_eq!(XdrValue::Enum(4).as_int(), Some(4));
    }

    #[test]
    fn display_is_readable() {
        let v = XdrValue::structure("p", vec![("x", XdrValue::Int(1))]);
        assert_eq!(v.to_string(), "p { x: 1 }");
        assert_eq!(XdrValue::Optional(None).to_string(), "null");
        assert_eq!(
            XdrValue::Array(vec![XdrValue::Int(1), XdrValue::Int(2)]).to_string(),
            "[1, 2]"
        );
    }

    #[test]
    fn kind_names() {
        assert_eq!(XdrValue::Void.kind(), "void");
        assert_eq!(XdrValue::Hyper(0).kind(), "hyper");
        assert_eq!(XdrValue::Optional(None).kind(), "optional");
    }
}
