//! Property-based tests for the XDR codec and graph marshaler,
//! including convergence of dirty-field delta marshaling.

use std::collections::HashMap;

use decaf_xdr::codec;
use decaf_xdr::graph::{self, CAddr, DeltaHook, FieldVal, NullTracker, ObjHeap, TrackerHook};
use decaf_xdr::mask::{Direction, MaskSet};
use decaf_xdr::schema::XdrType;
use decaf_xdr::spec::XdrSpec;
use decaf_xdr::value::XdrValue;
use proptest::prelude::*;

/// Strategy producing a matching `(XdrType, XdrValue)` pair.
fn typed_value() -> impl Strategy<Value = (XdrType, XdrValue)> {
    let leaf = prop_oneof![
        any::<i32>().prop_map(|v| (XdrType::Int, XdrValue::Int(v))),
        any::<u32>().prop_map(|v| (XdrType::UInt, XdrValue::UInt(v))),
        any::<i64>().prop_map(|v| (XdrType::Hyper, XdrValue::Hyper(v))),
        any::<u64>().prop_map(|v| (XdrType::UHyper, XdrValue::UHyper(v))),
        any::<bool>().prop_map(|v| (XdrType::Bool, XdrValue::Bool(v))),
        any::<u32>().prop_map(|bits| (XdrType::Float, XdrValue::Float(f32::from_bits(bits)))),
        any::<u64>().prop_map(|bits| (XdrType::Double, XdrValue::Double(f64::from_bits(bits)))),
        proptest::collection::vec(any::<u8>(), 0..24).prop_map(|b| {
            let n = b.len();
            (XdrType::OpaqueFixed(n), XdrValue::Opaque(b))
        }),
        proptest::collection::vec(any::<u8>(), 0..24)
            .prop_map(|b| (XdrType::OpaqueVar(None), XdrValue::Opaque(b))),
        "[a-zA-Z0-9 _:/.-]{0,20}".prop_map(|s| (XdrType::Str(None), XdrValue::Str(s))),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            // Fixed array of one element type.
            (inner.clone(), 0usize..4).prop_flat_map(|((ty, proto), n)| {
                let protos = vec![proto; n];
                (Just(ty), Just(protos), Just(n)).prop_map(|(ty, items, n)| {
                    (XdrType::ArrayFixed(Box::new(ty), n), XdrValue::Array(items))
                })
            }),
            // Optional.
            (inner.clone(), any::<bool>()).prop_map(|((ty, v), some)| {
                let val = if some {
                    XdrValue::Optional(Some(Box::new(v)))
                } else {
                    XdrValue::Optional(None)
                };
                (XdrType::Optional(Box::new(ty)), val)
            }),
        ]
    })
}

fn float_eq(a: &XdrValue, b: &XdrValue) -> bool {
    // NaN-tolerant comparison: encode-decode preserves the bit pattern.
    match (a, b) {
        (XdrValue::Float(x), XdrValue::Float(y)) => x.to_bits() == y.to_bits(),
        (XdrValue::Double(x), XdrValue::Double(y)) => x.to_bits() == y.to_bits(),
        (XdrValue::Array(xs), XdrValue::Array(ys)) => {
            xs.len() == ys.len() && xs.iter().zip(ys).all(|(x, y)| float_eq(x, y))
        }
        (XdrValue::Optional(Some(x)), XdrValue::Optional(Some(y))) => float_eq(x, y),
        (x, y) => x == y,
    }
}

proptest! {
    /// Every generated value round-trips through the wire format.
    #[test]
    fn codec_roundtrip((ty, value) in typed_value()) {
        let spec = XdrSpec::empty();
        let bytes = codec::encode(&value, &ty, &spec).unwrap();
        prop_assert_eq!(bytes.len() % 4, 0, "wire data must be 4-byte aligned");
        let back = codec::decode(&bytes, &ty, &spec).unwrap();
        prop_assert!(float_eq(&value, &back), "{:?} != {:?}", value, back);
    }

    /// Decoding never panics on arbitrary bytes; it returns Ok or Err.
    #[test]
    fn codec_decode_total(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let spec = XdrSpec::parse("struct s { int a; string n<8>; s2 p; };\
                                   typedef int s2;").unwrap();
        let _ = codec::decode(&bytes, &XdrType::Struct("s".into()), &spec);
        let _ = codec::decode(&bytes, &XdrType::Str(Some(8)), &spec);
        let _ = codec::decode(&bytes, &XdrType::ArrayVar(Box::new(XdrType::Int), None), &spec);
    }
}

/// Random directed graphs of `node` objects survive marshal/unmarshal with
/// structure preserved (isomorphism via parallel DFS).
#[derive(Debug, Clone)]
struct GraphCase {
    values: Vec<i32>,
    /// edges[i] = (left target index or none, right target index or none)
    edges: Vec<(Option<usize>, Option<usize>)>,
    root: usize,
}

fn graph_case() -> impl Strategy<Value = GraphCase> {
    (1usize..8).prop_flat_map(|n| {
        let targets = proptest::option::of(0..n);
        (
            proptest::collection::vec(any::<i32>(), n),
            proptest::collection::vec((targets.clone(), targets), n),
            0..n,
        )
            .prop_map(|(values, edges, root)| GraphCase {
                values,
                edges,
                root,
            })
    })
}

fn graph_spec() -> XdrSpec {
    XdrSpec::parse("struct gnode { int v; struct gnode *l; struct gnode *r; };").unwrap()
}

proptest! {
    #[test]
    fn graph_roundtrip_preserves_structure(case in graph_case()) {
        let spec = graph_spec();
        let mut src = ObjHeap::new();
        let addrs: Vec<_> = case
            .values
            .iter()
            .map(|v| {
                src.alloc("gnode", vec![
                    ("v".into(), FieldVal::Scalar(XdrValue::Int(*v))),
                    ("l".into(), FieldVal::Ptr(None)),
                    ("r".into(), FieldVal::Ptr(None)),
                ])
            })
            .collect();
        for (i, (l, r)) in case.edges.iter().enumerate() {
            src.set_ptr(addrs[i], "l", l.map(|t| addrs[t])).unwrap();
            src.set_ptr(addrs[i], "r", r.map(|t| addrs[t])).unwrap();
        }
        let root = addrs[case.root];
        let bytes =
            graph::marshal_graph(&src, Some(root), &spec, &MaskSet::full(), Direction::In)
                .unwrap();
        let mut dst = ObjHeap::with_base(0x7000_0000);
        let droot = graph::unmarshal_graph(
            &bytes, "gnode", &mut dst, &spec, &MaskSet::full(), Direction::In,
            &mut NullTracker,
        )
        .unwrap()
        .unwrap();

        // Parallel DFS comparing values and shape, with a visited map that
        // enforces a consistent bijection between source and destination.
        let mut mapping = std::collections::HashMap::new();
        let mut stack = vec![(root, droot)];
        while let Some((s, d)) = stack.pop() {
            match mapping.get(&s) {
                Some(&prev) => {
                    prop_assert_eq!(prev, d, "bijection must be consistent");
                    continue;
                }
                None => {
                    mapping.insert(s, d);
                }
            }
            prop_assert_eq!(src.scalar(s, "v").unwrap(), dst.scalar(d, "v").unwrap());
            for field in ["l", "r"] {
                let sp = src.ptr(s, field).unwrap();
                let dp = dst.ptr(d, field).unwrap();
                match (sp, dp) {
                    (None, None) => {}
                    (Some(sn), Some(dn)) => stack.push((sn, dn)),
                    _ => prop_assert!(false, "pointer shape differs on `{}`", field),
                }
            }
        }
    }
}

// ----------------------------------------------------- delta marshaling

/// A random mutation applied to the source heap between delta transfers.
#[derive(Debug, Clone)]
enum WriteOp {
    /// Overwrite node i's scalar `v`.
    SetV(usize, i32),
    /// Replace node i's variable array `xs` (possibly with an empty one).
    SetXs(usize, Vec<i32>),
    /// Rewire node i's `l` pointer to node j (or null).
    SetL(usize, Option<usize>),
    /// Rewire node i's `r` pointer to node j (or null).
    SetR(usize, Option<usize>),
}

#[derive(Debug, Clone)]
struct DeltaCase {
    values: Vec<i32>,
    edges: Vec<(Option<usize>, Option<usize>)>,
    root: usize,
    /// Rounds of writes; after each round the graph is delta-transferred
    /// and the destination must equal the source.
    rounds: Vec<Vec<WriteOp>>,
}

fn write_op(n: usize) -> BoxedStrategy<WriteOp> {
    prop_oneof![
        (0..n, any::<i32>()).prop_map(|(i, v)| WriteOp::SetV(i, v)),
        (0..n, proptest::collection::vec(any::<i32>(), 0..4))
            .prop_map(|(i, xs)| WriteOp::SetXs(i, xs)),
        (0..n, proptest::option::of(0..n)).prop_map(|(i, j)| WriteOp::SetL(i, j)),
        (0..n, proptest::option::of(0..n)).prop_map(|(i, j)| WriteOp::SetR(i, j)),
    ]
    .boxed()
}

fn delta_case() -> impl Strategy<Value = DeltaCase> {
    (1usize..6).prop_flat_map(|n| {
        let targets = proptest::option::of(0..n);
        (
            proptest::collection::vec(any::<i32>(), n),
            proptest::collection::vec((targets.clone(), targets), n),
            0..n,
            proptest::collection::vec(proptest::collection::vec(write_op(n), 0..6), 1..5),
        )
            .prop_map(|(values, edges, root, rounds)| DeltaCase {
                values,
                edges,
                root,
                rounds,
            })
    })
}

fn delta_spec() -> XdrSpec {
    XdrSpec::parse("struct dnode { int v; int xs<8>; struct dnode *l; struct dnode *r; };").unwrap()
}

/// The sender-side delta map, as the XPC channel keeps per end.
#[derive(Default)]
struct TestDelta(HashMap<(CAddr, Direction), u64>);

impl DeltaHook for TestDelta {
    fn last_sent(&mut self, local: CAddr, dir: Direction) -> Option<u64> {
        self.0.get(&(local, dir)).copied()
    }
    fn mark_sent(&mut self, local: CAddr, dir: Direction, gen: u64) {
        self.0.insert((local, dir), gen);
    }
}

/// A persistent receiver-side tracker, as the XPC channel keeps per end.
#[derive(Default)]
struct TestTracker(HashMap<(CAddr, String), CAddr>);

impl TrackerHook for TestTracker {
    fn lookup(&mut self, remote: CAddr, type_name: &str) -> Option<CAddr> {
        self.0.get(&(remote, type_name.to_string())).copied()
    }
    fn associate(&mut self, remote: CAddr, type_name: &str, local: CAddr) {
        self.0.insert((remote, type_name.to_string()), local);
    }
}

/// Parallel DFS asserting the destination's reachable subgraph equals the
/// source's: same `v`, same `xs` (including emptiness), same pointer
/// shape, consistent bijection (so cycles close identically).
fn assert_graphs_equal(src: &ObjHeap, sroot: CAddr, dst: &ObjHeap, droot: CAddr) {
    let mut mapping = HashMap::new();
    let mut stack = vec![(sroot, droot)];
    while let Some((s, d)) = stack.pop() {
        match mapping.get(&s) {
            Some(&prev) => {
                assert_eq!(prev, d, "bijection must be consistent");
                continue;
            }
            None => {
                mapping.insert(s, d);
            }
        }
        assert_eq!(src.scalar(s, "v").unwrap(), dst.scalar(d, "v").unwrap());
        assert_eq!(src.scalar(s, "xs").unwrap(), dst.scalar(d, "xs").unwrap());
        for field in ["l", "r"] {
            let sp = src.ptr(s, field).unwrap();
            let dp = dst.ptr(d, field).unwrap();
            match (sp, dp) {
                (None, None) => {}
                (Some(sn), Some(dn)) => stack.push((sn, dn)),
                _ => panic!("pointer shape differs on `{field}`"),
            }
        }
    }
}

proptest! {
    /// Delta-decode(delta-encode(heap)) converges to full-state equality
    /// across random write sequences — scalar overwrites, empty and
    /// non-empty array replacements, and pointer rewirings that create
    /// and break cycles.
    #[test]
    fn delta_transfers_converge_to_full_state(case in delta_case()) {
        let spec = delta_spec();
        let masks = MaskSet::full();
        let mut src = ObjHeap::new();
        let addrs: Vec<_> = case
            .values
            .iter()
            .map(|v| {
                src.alloc("dnode", vec![
                    ("v".into(), FieldVal::Scalar(XdrValue::Int(*v))),
                    ("xs".into(), FieldVal::Scalar(XdrValue::Array(Vec::new()))),
                    ("l".into(), FieldVal::Ptr(None)),
                    ("r".into(), FieldVal::Ptr(None)),
                ])
            })
            .collect();
        for (i, (l, r)) in case.edges.iter().enumerate() {
            src.set_ptr(addrs[i], "l", l.map(|t| addrs[t])).unwrap();
            src.set_ptr(addrs[i], "r", r.map(|t| addrs[t])).unwrap();
        }
        let root = addrs[case.root];

        let mut dst = ObjHeap::with_base(0x7000_0000);
        let mut delta = TestDelta::default();
        let mut tracker = TestTracker::default();
        let transfer = |src: &ObjHeap,
                            dst: &mut ObjHeap,
                            delta: &mut TestDelta,
                            tracker: &mut TestTracker| {
            let (bytes, _) = graph::marshal_args_delta(
                src, &[Some(root)], &spec, &masks, Direction::In, &|a| a, delta,
            )
            .unwrap();
            let roots = graph::unmarshal_args(
                &bytes, &["dnode"], dst, &spec, &masks, Direction::In, tracker,
            )
            .unwrap();
            (bytes.len(), roots[0].unwrap())
        };

        // Initial transfer is full; every later one is a delta.
        let (first_len, droot) = transfer(&src, &mut dst, &mut delta, &mut tracker);
        assert_graphs_equal(&src, root, &dst, droot);

        for round in &case.rounds {
            for op in round {
                match op {
                    WriteOp::SetV(i, v) => {
                        src.set_scalar(addrs[*i], "v", XdrValue::Int(*v)).unwrap();
                    }
                    WriteOp::SetXs(i, xs) => {
                        let arr = XdrValue::Array(xs.iter().map(|v| XdrValue::Int(*v)).collect());
                        src.set_scalar(addrs[*i], "xs", arr).unwrap();
                    }
                    WriteOp::SetL(i, j) => {
                        src.set_ptr(addrs[*i], "l", j.map(|t| addrs[t])).unwrap();
                    }
                    WriteOp::SetR(i, j) => {
                        src.set_ptr(addrs[*i], "r", j.map(|t| addrs[t])).unwrap();
                    }
                }
            }
            let (len, droot) = transfer(&src, &mut dst, &mut delta, &mut tracker);
            assert_graphs_equal(&src, root, &dst, droot);
            // Against a full re-marshal of the *current* graph, a delta
            // round costs at most the extra bitmap word per object.
            let full_now = graph::marshal_args(
                &src, &[Some(root)], &spec, &masks, Direction::In,
            )
            .unwrap()
            .len();
            prop_assert!(
                len <= full_now + 4 * case.values.len(),
                "delta round ({len} B) should not blow past a full re-marshal ({full_now} B)"
            );
        }

        // A quiescent repeat transfers headers only and changes nothing.
        let (quiet_len, droot) = transfer(&src, &mut dst, &mut delta, &mut tracker);
        assert_graphs_equal(&src, root, &dst, droot);
        let full_now = graph::marshal_args(&src, &[Some(root)], &spec, &masks, Direction::In)
            .unwrap()
            .len();
        prop_assert!(
            quiet_len < full_now,
            "clean repeat ({quiet_len} B) must undercut a full re-marshal ({full_now} B)"
        );
        let _ = first_len;
    }
}
