//! Admission control over the data paths' staged backpressure.
//!
//! Staged backpressure ([`crate::XpcError::Backpressure`]) is a
//! *capacity* signal: it fires when a ring or pool is physically full,
//! after the work to fill it has already been spent. Under sustained
//! overload that is too late — an open-loop arrival process does not
//! slow down when the server falls behind, so queues (and therefore
//! latency) grow without bound while goodput stays pinned at the
//! service rate. Admission control moves the drop decision to the
//! *front* of the queue, where rejecting a request costs almost
//! nothing and the requests that are admitted still see bounded queues.
//!
//! [`AdmissionController`] is deliberately advisory: it owns the
//! policy, the per-class token buckets and the ledger, but not the
//! queue. The queue's owner calls [`AdmissionController::offer`] with
//! its current backlog and executes the verdict — enqueue, refuse, or
//! shed its oldest entries first (reporting the shed count back via
//! [`AdmissionController::note_shed`] so the ledger stays closed).
//! This split lets the same controller govern a software dispatch
//! queue (which *can* shed) and a descriptor ring
//! ([`crate::ShardedUrbPath`], which cannot — rings are SPSC FIFO, so
//! at that layer shed-oldest degrades to admit and only reject is
//! enforceable).
//!
//! The ledger invariant, per class:
//! `offered == admitted + rejected` and `shed <= admitted`. Every
//! overload experiment asserts it at every swept rate.

use std::cell::Cell;
use std::fmt;

/// Scale factor for fractional tokens: one admission token is
/// `1e9` scaled units, so integer refill math (`rate × dt_ns`) needs no
/// floating point and loses nothing to rounding.
const TOKEN_SCALE: u64 = 1_000_000_000;

/// The two open-loop traffic classes the overload experiments mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficClass {
    /// Netperf-shaped packet arrivals (pool-less RX descriptors).
    Net,
    /// Tar-shaped storage URBs (sector writes through the URB rings).
    Storage,
}

impl TrafficClass {
    /// Every class, in ledger order.
    pub const ALL: [TrafficClass; 2] = [TrafficClass::Net, TrafficClass::Storage];

    fn index(self) -> usize {
        match self {
            TrafficClass::Net => 0,
            TrafficClass::Storage => 1,
        }
    }

    /// Short label for tables.
    pub fn name(self) -> &'static str {
        match self {
            TrafficClass::Net => "net",
            TrafficClass::Storage => "storage",
        }
    }
}

/// What to do when an open-loop arrival meets a backlog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Admit everything; queues grow without bound past saturation.
    /// The baseline that makes the latency knee visible.
    QueueUnbounded,
    /// Refuse at the door: an arrival is rejected when the backlog has
    /// reached the queue cap or its class token bucket is dry. Rejected
    /// work costs (almost) nothing and admitted work sees a bounded
    /// queue.
    RejectAtAdmission,
    /// Admit the newcomer but shed the *oldest* waiting entries beyond
    /// the cap — drop-from-head keeps the queue's age, and therefore
    /// waiting time, bounded (fresh requests are worth more than stale
    /// ones once the client has likely timed out).
    ShedOldest,
}

impl AdmissionPolicy {
    /// Every policy, in sweep order.
    pub const ALL: [AdmissionPolicy; 3] = [
        AdmissionPolicy::QueueUnbounded,
        AdmissionPolicy::RejectAtAdmission,
        AdmissionPolicy::ShedOldest,
    ];

    /// Short label for tables.
    pub fn name(self) -> &'static str {
        match self {
            AdmissionPolicy::QueueUnbounded => "queue-unbounded",
            AdmissionPolicy::RejectAtAdmission => "reject-at-admission",
            AdmissionPolicy::ShedOldest => "shed-oldest",
        }
    }
}

impl fmt::Display for AdmissionPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The controller's verdict on one arrival. The queue owner executes
/// it; the controller has already updated its ledger (except `shed`,
/// which the owner reports after actually dropping entries).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionVerdict {
    /// Enqueue the arrival.
    Admit,
    /// Enqueue the arrival, but first drop this many oldest waiting
    /// entries (report them via [`AdmissionController::note_shed`]).
    Shed(usize),
    /// Refuse the arrival; do not enqueue.
    Reject,
}

/// An integer token bucket in virtual time: `rate_per_s` tokens accrue
/// per virtual second up to a `burst` ceiling. All math is integer on a
/// `1e9`-scaled token count, so refill is exact for any nanosecond
/// interval and two runs with the same arrival schedule drain the
/// bucket identically.
#[derive(Debug)]
pub struct TokenBucket {
    rate_per_s: u64,
    burst: u64,
    /// Tokens × [`TOKEN_SCALE`].
    scaled: Cell<u64>,
    last_refill_ns: Cell<u64>,
}

impl TokenBucket {
    /// A bucket accruing `rate_per_s` tokens per virtual second with a
    /// `burst`-token ceiling, starting full.
    pub fn new(rate_per_s: u64, burst: u64) -> Self {
        let burst = burst.max(1);
        TokenBucket {
            rate_per_s,
            burst,
            scaled: Cell::new(burst * TOKEN_SCALE),
            last_refill_ns: Cell::new(0),
        }
    }

    /// The sustained refill rate (tokens per virtual second).
    pub fn rate_per_s(&self) -> u64 {
        self.rate_per_s
    }

    fn refill(&self, now_ns: u64) {
        let dt = now_ns.saturating_sub(self.last_refill_ns.get());
        self.last_refill_ns.set(now_ns);
        let ceiling = self.burst * TOKEN_SCALE;
        self.scaled
            .set(ceiling.min(self.scaled.get().saturating_add(self.rate_per_s * dt)));
    }

    /// Takes one token if available at virtual time `now_ns`.
    pub fn try_take(&self, now_ns: u64) -> bool {
        self.refill(now_ns);
        if self.scaled.get() >= TOKEN_SCALE {
            self.scaled.set(self.scaled.get() - TOKEN_SCALE);
            true
        } else {
            false
        }
    }

    /// Whole tokens available at virtual time `now_ns`.
    pub fn available(&self, now_ns: u64) -> u64 {
        self.refill(now_ns);
        self.scaled.get() / TOKEN_SCALE
    }
}

/// One class's admission ledger.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Arrivals offered to the controller.
    pub offered: u64,
    /// Arrivals admitted (including ones that later got shed).
    pub admitted: u64,
    /// Arrivals refused at the door.
    pub rejected: u64,
    /// Previously admitted entries dropped from the head of the queue.
    pub shed: u64,
}

impl AdmissionStats {
    /// Sums two ledgers (for all-class totals).
    pub fn merge(self, other: AdmissionStats) -> AdmissionStats {
        AdmissionStats {
            offered: self.offered + other.offered,
            admitted: self.admitted + other.admitted,
            rejected: self.rejected + other.rejected,
            shed: self.shed + other.shed,
        }
    }

    /// The ledger invariant for one class.
    pub fn balanced(&self) -> bool {
        self.offered == self.admitted + self.rejected && self.shed <= self.admitted
    }
}

/// Policy + per-class token buckets + ledger, shared by every queue the
/// overload engine admits into.
#[derive(Debug)]
pub struct AdmissionController {
    policy: AdmissionPolicy,
    queue_cap: usize,
    buckets: [Option<TokenBucket>; 2],
    stats: [Cell<AdmissionStats>; 2],
}

impl AdmissionController {
    /// A controller enforcing `policy` with backlog ceiling `queue_cap`
    /// (ignored by [`AdmissionPolicy::QueueUnbounded`]) and no token
    /// buckets.
    pub fn new(policy: AdmissionPolicy, queue_cap: usize) -> Self {
        AdmissionController {
            policy,
            queue_cap: queue_cap.max(1),
            buckets: [None, None],
            stats: [
                Cell::new(AdmissionStats::default()),
                Cell::new(AdmissionStats::default()),
            ],
        }
    }

    /// Installs a token bucket for `class` (builder style). Only
    /// [`AdmissionPolicy::RejectAtAdmission`] consults buckets; the
    /// other policies admit regardless of token level.
    pub fn with_bucket(mut self, class: TrafficClass, bucket: TokenBucket) -> Self {
        self.buckets[class.index()] = Some(bucket);
        self
    }

    /// The enforced policy.
    pub fn policy(&self) -> AdmissionPolicy {
        self.policy
    }

    /// The backlog ceiling.
    pub fn queue_cap(&self) -> usize {
        self.queue_cap
    }

    /// Rules on one arrival of `class` at virtual time `now_ns`, given
    /// the owner's current `backlog` (entries waiting, not counting the
    /// one in service). Updates `offered` and the verdict's own ledger
    /// field; a [`AdmissionVerdict::Shed`] verdict's drops are reported
    /// separately by the owner via [`AdmissionController::note_shed`].
    pub fn offer(&self, now_ns: u64, class: TrafficClass, backlog: usize) -> AdmissionVerdict {
        let i = class.index();
        let mut s = self.stats[i].get();
        s.offered += 1;
        let verdict = match self.policy {
            AdmissionPolicy::QueueUnbounded => AdmissionVerdict::Admit,
            AdmissionPolicy::RejectAtAdmission => {
                // Cap first: a backlog reject must not drain a token the
                // bucket could have spent on a later, admittable arrival.
                if backlog >= self.queue_cap {
                    AdmissionVerdict::Reject
                } else if self.buckets[i].as_ref().is_none_or(|b| b.try_take(now_ns)) {
                    AdmissionVerdict::Admit
                } else {
                    AdmissionVerdict::Reject
                }
            }
            AdmissionPolicy::ShedOldest => {
                let over = (backlog + 1).saturating_sub(self.queue_cap);
                if over > 0 {
                    AdmissionVerdict::Shed(over)
                } else {
                    AdmissionVerdict::Admit
                }
            }
        };
        match verdict {
            AdmissionVerdict::Reject => s.rejected += 1,
            AdmissionVerdict::Admit | AdmissionVerdict::Shed(_) => s.admitted += 1,
        }
        self.stats[i].set(s);
        verdict
    }

    /// Records that the queue owner dropped `n` previously admitted
    /// entries of `class` from the head of its queue.
    pub fn note_shed(&self, class: TrafficClass, n: usize) {
        let i = class.index();
        let mut s = self.stats[i].get();
        s.shed += n as u64;
        self.stats[i].set(s);
    }

    /// One class's ledger.
    pub fn stats(&self, class: TrafficClass) -> AdmissionStats {
        self.stats[class.index()].get()
    }

    /// All classes merged.
    pub fn total(&self) -> AdmissionStats {
        TrafficClass::ALL
            .into_iter()
            .map(|c| self.stats(c))
            .fold(AdmissionStats::default(), AdmissionStats::merge)
    }

    /// The ledger invariant across every class.
    pub fn balanced(&self) -> bool {
        TrafficClass::ALL
            .into_iter()
            .all(|c| self.stats(c).balanced())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_refills_exactly_in_virtual_time() {
        // 1000 tokens/s, burst 2: drain the burst at t=0, then exactly
        // one token every 1 ms — integer math, no drift.
        let b = TokenBucket::new(1_000, 2);
        assert!(b.try_take(0));
        assert!(b.try_take(0));
        assert!(!b.try_take(0), "burst exhausted");
        assert!(!b.try_take(999_999), "one ns short of a token");
        assert!(b.try_take(1_000_000), "exactly one refill period");
        assert!(!b.try_take(1_000_000));
        // Idle time accrues only up to the burst ceiling.
        assert_eq!(b.available(1_000_000_000), 2);
    }

    #[test]
    fn unbounded_admits_everything() {
        let c = AdmissionController::new(AdmissionPolicy::QueueUnbounded, 1);
        for backlog in [0usize, 10, 10_000] {
            assert_eq!(
                c.offer(0, TrafficClass::Net, backlog),
                AdmissionVerdict::Admit
            );
        }
        let s = c.stats(TrafficClass::Net);
        assert_eq!((s.offered, s.admitted, s.rejected), (3, 3, 0));
        assert!(c.balanced());
    }

    #[test]
    fn reject_enforces_cap_and_bucket() {
        let c = AdmissionController::new(AdmissionPolicy::RejectAtAdmission, 2)
            .with_bucket(TrafficClass::Storage, TokenBucket::new(1_000, 1));
        // Cap: backlog at the ceiling refuses even with tokens.
        assert_eq!(
            c.offer(0, TrafficClass::Storage, 2),
            AdmissionVerdict::Reject
        );
        // Bucket: under the cap, the single burst token admits once...
        assert_eq!(
            c.offer(0, TrafficClass::Storage, 0),
            AdmissionVerdict::Admit
        );
        // ...then the dry bucket refuses until virtual time refills it.
        assert_eq!(
            c.offer(1, TrafficClass::Storage, 0),
            AdmissionVerdict::Reject
        );
        assert_eq!(
            c.offer(1_000_001, TrafficClass::Storage, 0),
            AdmissionVerdict::Admit
        );
        // Classes are independent: Net has no bucket, admits freely.
        assert_eq!(c.offer(1, TrafficClass::Net, 0), AdmissionVerdict::Admit);
        assert!(c.balanced());
        assert_eq!(c.total().offered, 5);
    }

    #[test]
    fn shed_oldest_bounds_the_backlog_not_the_admits() {
        let c = AdmissionController::new(AdmissionPolicy::ShedOldest, 3);
        assert_eq!(c.offer(0, TrafficClass::Net, 2), AdmissionVerdict::Admit);
        assert_eq!(c.offer(0, TrafficClass::Net, 3), AdmissionVerdict::Shed(1));
        c.note_shed(TrafficClass::Net, 1);
        assert_eq!(c.offer(0, TrafficClass::Net, 3), AdmissionVerdict::Shed(1));
        c.note_shed(TrafficClass::Net, 1);
        let s = c.stats(TrafficClass::Net);
        assert_eq!((s.offered, s.admitted, s.rejected, s.shed), (3, 3, 0, 2));
        assert!(c.balanced(), "every admit enqueued, every shed reported");
        // A cap of 1 sheds the previous occupant on every arrival; the
        // ledger still closes because every shed entry was admitted.
        let c2 = AdmissionController::new(AdmissionPolicy::ShedOldest, 1);
        for i in 0..5u64 {
            let v = c2.offer(i, TrafficClass::Storage, usize::from(i > 0));
            if let AdmissionVerdict::Shed(n) = v {
                c2.note_shed(TrafficClass::Storage, n);
            }
        }
        assert!(c2.balanced());
    }
}
