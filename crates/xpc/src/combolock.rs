//! Combolocks: spinlock in the kernel, semaphore once user mode appears.
//!
//! "Decaf Drivers relies on kernel-mode combolocks from Microdrivers to
//! synchronize access to shared data across domains. When acquired only in
//! the kernel, a combolock is a spinlock. When acquired from user mode, a
//! combolock is a semaphore, and subsequent kernel threads must wait for
//! the semaphore" (paper §3.1.3).
//!
//! In the deterministic single-threaded simulation the lock cannot truly
//! block; what it models is (a) the mode switch and its cost asymmetry,
//! (b) the atomic-context rules (spin mode enters atomic context; semaphore
//! mode requires a blocking-legal context), and (c) the guarantee that
//! "the holder of a lock has the most recent version of the objects it
//! protects", exposed as an `on_acquire` synchronization hook the XPC
//! runtime uses to refresh protected objects.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use decaf_simkernel::{costs, Kernel, ViolationKind};

use crate::domain::Domain;

/// Which behaviour the combolock currently exhibits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComboMode {
    /// Kernel-only so far: spinlock semantics.
    Spin,
    /// User mode holds or has held it: semaphore semantics.
    Semaphore,
}

/// Acquisition counters for the combolock ablation bench.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ComboStats {
    /// Acquisitions served in spinlock mode.
    pub spin_acquires: u64,
    /// Acquisitions served in semaphore mode.
    pub sema_acquires: u64,
    /// Spin → semaphore transitions.
    pub mode_switches: u64,
}

type SyncHook = Rc<dyn Fn(&Kernel, Domain)>;

/// A Microdrivers-style combolock.
pub struct Combolock {
    name: String,
    mode: Cell<ComboMode>,
    holder: Cell<Option<Domain>>,
    user_holds: Cell<u32>,
    stats: Cell<ComboStats>,
    on_acquire: RefCell<Option<SyncHook>>,
}

impl Combolock {
    /// Creates a combolock in spinlock mode.
    pub fn new(name: impl Into<String>) -> Self {
        Combolock {
            name: name.into(),
            mode: Cell::new(ComboMode::Spin),
            holder: Cell::new(None),
            user_holds: Cell::new(0),
            stats: Cell::new(ComboStats::default()),
            on_acquire: RefCell::new(None),
        }
    }

    /// Current mode.
    pub fn mode(&self) -> ComboMode {
        self.mode.get()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ComboStats {
        self.stats.get()
    }

    /// The lock's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Installs the object-synchronization hook invoked on every acquire.
    pub fn set_sync_hook(&self, hook: SyncHook) {
        *self.on_acquire.borrow_mut() = Some(hook);
    }

    fn bump(&self, f: impl FnOnce(&mut ComboStats)) {
        let mut s = self.stats.get();
        f(&mut s);
        self.stats.set(s);
    }

    fn run_hook(&self, kernel: &Kernel, from: Domain) {
        let hook = self.on_acquire.borrow().clone();
        if let Some(h) = hook {
            h(kernel, from);
        }
    }

    /// Acquires the lock from `from`'s context.
    ///
    /// User-mode acquisition switches the lock to semaphore mode;
    /// subsequent kernel acquisitions pay semaphore cost and must be in a
    /// blocking-legal context. Re-acquisition while held records a
    /// [`ViolationKind::SelfDeadlock`].
    pub fn acquire<'a>(&'a self, kernel: &'a Kernel, from: Domain) -> ComboGuard<'a> {
        if self.holder.get().is_some() {
            kernel.record_violation(
                ViolationKind::SelfDeadlock,
                format!("combolock `{}` re-acquired while held", self.name),
            );
        }
        if from.is_user() {
            if self.mode.replace(ComboMode::Semaphore) == ComboMode::Spin {
                self.bump(|s| s.mode_switches += 1);
            }
            self.user_holds.set(self.user_holds.get() + 1);
        }
        let entered_atomic = match self.mode.get() {
            ComboMode::Spin => {
                kernel.charge(from.cpu_class(), costs::SPINLOCK_NS);
                self.bump(|s| s.spin_acquires += 1);
                kernel.enter_atomic();
                true
            }
            ComboMode::Semaphore => {
                kernel.charge(from.cpu_class(), costs::MUTEX_NS);
                kernel.assert_may_block(&format!("combolock `{}` in semaphore mode", self.name));
                self.bump(|s| s.sema_acquires += 1);
                false
            }
        };
        self.holder.set(Some(from));
        self.run_hook(kernel, from);
        ComboGuard {
            kernel,
            lock: self,
            from,
            entered_atomic,
        }
    }

    fn release(&self, kernel: &Kernel, from: Domain, entered_atomic: bool) {
        self.holder.set(None);
        if entered_atomic {
            kernel.leave_atomic();
            kernel.charge(from.cpu_class(), costs::SPINLOCK_NS);
        } else {
            kernel.charge(from.cpu_class(), costs::MUTEX_NS);
        }
        if from.is_user() {
            let holds = self.user_holds.get().saturating_sub(1);
            self.user_holds.set(holds);
            if holds == 0 {
                // No user holders remain: revert to cheap spinlock mode.
                self.mode.set(ComboMode::Spin);
            }
        }
    }
}

impl std::fmt::Debug for Combolock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Combolock")
            .field("name", &self.name)
            .field("mode", &self.mode.get())
            .field("holder", &self.holder.get())
            .finish()
    }
}

/// Guard for a held [`Combolock`]; releases on drop.
pub struct ComboGuard<'a> {
    kernel: &'a Kernel,
    lock: &'a Combolock,
    from: Domain,
    entered_atomic: bool,
}

impl Drop for ComboGuard<'_> {
    fn drop(&mut self) {
        self.lock
            .release(self.kernel, self.from, self.entered_atomic);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell as StdCell;

    #[test]
    fn kernel_only_stays_spin() {
        let k = Kernel::new();
        let l = Combolock::new("tx");
        for _ in 0..3 {
            let g = l.acquire(&k, Domain::Nucleus);
            assert!(!k.may_block(), "spin mode is atomic");
            drop(g);
        }
        assert_eq!(l.mode(), ComboMode::Spin);
        let s = l.stats();
        assert_eq!(s.spin_acquires, 3);
        assert_eq!(s.sema_acquires, 0);
        assert_eq!(s.mode_switches, 0);
        assert!(k.violations().is_empty());
    }

    #[test]
    fn user_acquire_switches_to_semaphore_and_back() {
        let k = Kernel::new();
        let l = Combolock::new("adapter");
        {
            let _g = l.acquire(&k, Domain::Decaf);
            assert_eq!(l.mode(), ComboMode::Semaphore);
            assert!(k.may_block(), "semaphore mode is not atomic");
        }
        // After the user releases, kernel-only acquisition is spin again.
        assert_eq!(l.mode(), ComboMode::Spin);
        let _g = l.acquire(&k, Domain::Nucleus);
        assert_eq!(l.stats().mode_switches, 1);
        assert_eq!(l.stats().sema_acquires, 1);
        assert_eq!(l.stats().spin_acquires, 1);
    }

    #[test]
    fn self_deadlock_detected() {
        let k = Kernel::new();
        let l = Combolock::new("x");
        let _a = l.acquire(&k, Domain::Nucleus);
        let _b = l.acquire(&k, Domain::Nucleus);
        assert!(k
            .violations()
            .iter()
            .any(|v| v.kind == ViolationKind::SelfDeadlock));
    }

    #[test]
    fn sync_hook_runs_on_every_acquire() {
        let k = Kernel::new();
        let l = Combolock::new("synced");
        let count = Rc::new(StdCell::new(0));
        let c = Rc::clone(&count);
        l.set_sync_hook(Rc::new(move |_k, _d| c.set(c.get() + 1)));
        drop(l.acquire(&k, Domain::Nucleus));
        drop(l.acquire(&k, Domain::Decaf));
        assert_eq!(count.get(), 2);
    }

    #[test]
    fn user_time_charged_to_user_class() {
        let k = Kernel::new();
        let l = Combolock::new("t");
        let before = k.snapshot();
        drop(l.acquire(&k, Domain::Decaf));
        let after = k.snapshot();
        assert!(after.user_busy_ns > before.user_busy_ns);
        assert_eq!(after.kernel_busy_ns, before.kernel_busy_ns);
    }
}
