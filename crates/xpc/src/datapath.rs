//! The shared-memory data-path channel: descriptors ride pinned rings,
//! doorbells ride the control transport, payload bytes never touch the
//! XDR marshaler.
//!
//! A [`DataPathChannel`] pairs an [`XpcChannel`] with the
//! [`decaf_shmring`] subsystem:
//!
//! * the **producer** (normally the nucleus: the network stack's
//!   transmit path, or the interrupt handler posting received frames)
//!   writes payloads into the shared [`BufPool`] — the one audited CPU
//!   copy — and posts 16-byte [`Descriptor`]s into the [`ShmRing`];
//! * the **doorbell** is an ordinary XPC call with *zero object
//!   arguments*: one crossing, priced by the channel's transport, that
//!   tells the consumer "descriptors await". A [`DoorbellPolicy`] coalesces
//!   it — ring at a watermark occupancy, or once the oldest post has
//!   waited out the coalescing deadline;
//! * the **consumer** (the decaf driver's drain handler) pops
//!   descriptors — paying cache-line pulls, not per-byte marshal — and
//!   hands them back through a **completion ring**, so buffer ownership
//!   round-trips without a single payload byte crossing by value.
//!
//! This is the mechanism that makes hosting the *data* path at user
//! level affordable: the per-packet boundary cost collapses from
//! `O(payload bytes)` marshaling to `O(1)` descriptor traffic plus an
//! amortized doorbell.

use std::rc::Rc;

use decaf_shmring::{BufPool, Descriptor, DoorbellPolicy, PoolError, RingError, ShmRing};
use decaf_simkernel::{costs, Kernel};
use decaf_xdr::XdrValue;

use crate::domain::Domain;
use crate::endpoint::XpcChannel;
use crate::error::{XpcError, XpcResult};
use crate::transport::TransportKind;

/// Producer-side handle: posts descriptors, coalesces doorbells,
/// reclaims completed buffers.
pub struct DataPathChannel {
    channel: Rc<XpcChannel>,
    producer: Domain,
    consumer: Domain,
    ring: Rc<ShmRing>,
    completions: Rc<ShmRing>,
    pool: Option<Rc<BufPool>>,
    policy: DoorbellPolicy,
    doorbell_proc: String,
}

impl DataPathChannel {
    /// Builds a data path whose descriptors flow `producer` → peer and
    /// whose doorbell invokes `doorbell_proc` (which must be registered
    /// at the peer end of `channel`).
    ///
    /// `pool` is the payload buffer pool for [`DataPathChannel::send`];
    /// pass `None` when descriptors reference buffers owned elsewhere
    /// (e.g. device receive slots) and are posted with
    /// [`DataPathChannel::post`].
    pub fn new(
        channel: Rc<XpcChannel>,
        producer: Domain,
        doorbell_proc: impl Into<String>,
        ring: Rc<ShmRing>,
        completions: Rc<ShmRing>,
        pool: Option<Rc<BufPool>>,
        policy: DoorbellPolicy,
    ) -> XpcResult<Rc<Self>> {
        let consumer = channel.peer_domain(producer)?;
        Ok(Rc::new(DataPathChannel {
            channel,
            producer,
            consumer,
            ring,
            completions,
            pool,
            policy,
            doorbell_proc: doorbell_proc.into(),
        }))
    }

    /// The underlying control channel.
    pub fn channel(&self) -> &Rc<XpcChannel> {
        &self.channel
    }

    /// The descriptor ring (producer → consumer).
    pub fn ring(&self) -> &Rc<ShmRing> {
        &self.ring
    }

    /// The completion ring (consumer → producer).
    pub fn completions(&self) -> &Rc<ShmRing> {
        &self.completions
    }

    /// The payload pool, if this path owns one.
    pub fn pool(&self) -> Option<&Rc<BufPool>> {
        self.pool.as_ref()
    }

    /// Descriptors posted and not yet drained by a doorbell.
    pub fn pending(&self) -> usize {
        self.ring.len()
    }

    /// An end handle for `domain` — what drain handlers and interrupt
    /// paths capture instead of the whole channel (no reference cycles
    /// through registered procedures).
    pub fn end(&self, domain: Domain) -> DataPathEnd {
        DataPathEnd {
            ring: Rc::clone(&self.ring),
            completions: Rc::clone(&self.completions),
            pool: self.pool.clone(),
            domain,
        }
    }

    fn map_pool_err(e: PoolError) -> XpcError {
        XpcError::Backpressure(e.to_string())
    }

    /// Sends one payload: allocates a pool buffer, writes the payload
    /// into shared memory (the single audited copy), posts a descriptor
    /// and rings the doorbell if the policy says it is due.
    ///
    /// On pool exhaustion the channel applies backpressure in stages:
    /// reclaim completions, force a doorbell so the consumer drains,
    /// reclaim again — and only then reports [`XpcError::Backpressure`].
    ///
    /// An error always means the frame was *not* posted (producers may
    /// safely retry or unwind); once the descriptor is in the ring the
    /// send has succeeded, and any fault in the post-send doorbell is
    /// contained rather than surfaced here.
    pub fn send(&self, kernel: &Kernel, payload: &[u8], cookie: u64) -> XpcResult<()> {
        let pool = self
            .pool
            .as_ref()
            .ok_or_else(|| XpcError::Backpressure("data path has no buffer pool".into()))?;
        self.reclaim_completions(kernel);
        let handle = match pool.alloc() {
            Ok(h) => h,
            Err(PoolError::Exhausted) => {
                self.ring_doorbell(kernel)?;
                self.reclaim_completions(kernel);
                pool.alloc().map_err(Self::map_pool_err)?
            }
            Err(e) => return Err(Self::map_pool_err(e)),
        };
        // From here the buffer is ours until a descriptor carries it: on
        // any failure it must go back to the pool, or backpressure would
        // become permanent pool shrinkage.
        if let Err(e) = pool.write_payload(kernel, self.producer.cpu_class(), handle, payload) {
            let _ = pool.free(handle);
            return Err(Self::map_pool_err(e));
        }
        if let Err(e) = self.post(
            kernel,
            Descriptor {
                buf: handle,
                len: payload.len() as u32,
                cookie,
            },
        ) {
            let _ = pool.free(handle);
            return Err(e);
        }
        // The frame is committed once its descriptor is posted; an error
        // from `send` always means "not posted". The doorbell itself is
        // best-effort: a consumer-side fault during the drain is
        // contained by the XPC layer (and counted in the channel's fault
        // stats), the batch stays parked, and the deadline poll retries
        // the crossing.
        let _ = self.maybe_ring(kernel);
        Ok(())
    }

    /// Posts a raw descriptor without touching the pool or the doorbell.
    /// Safe from atomic context (no crossing happens); the caller decides
    /// when to ring — interrupt handlers defer that to a work item.
    pub fn post(&self, kernel: &Kernel, desc: Descriptor) -> XpcResult<()> {
        match self.ring.push(kernel, self.producer.cpu_class(), desc) {
            Ok(()) => {}
            Err(RingError::Full) => {
                return Err(XpcError::Backpressure(format!(
                    "ring `{}` full",
                    self.ring.name()
                )))
            }
        }
        self.policy.note_post(kernel.now_ns());
        kernel.trace_instant(
            "ring",
            "post",
            &[
                ("occupancy", self.ring.len() as u64),
                ("bytes", desc.len as u64),
            ],
        );
        let hwm = self.ring.stats().occupancy_hwm;
        self.channel.bump(|s| {
            s.ring_posts += 1;
            s.ring_occupancy_hwm = s.ring_occupancy_hwm.max(hwm);
        });
        Ok(())
    }

    /// Rings the doorbell if the policy says the parked descriptors are
    /// due (watermark reached or coalescing deadline expired).
    pub fn maybe_ring(&self, kernel: &Kernel) -> XpcResult<bool> {
        if self.policy.due(kernel.now_ns(), self.ring.len()) {
            self.ring_doorbell(kernel)?;
            return Ok(true);
        }
        if !self.ring.is_empty() {
            // The policy held the doorbell back: a coalesce, with the
            // age of the oldest parked descriptor as evidence.
            kernel.trace_instant(
                "ring",
                "coalesce",
                &[
                    ("parked", self.ring.len() as u64),
                    (
                        "age_ns",
                        self.policy.armed_age_ns(kernel.now_ns()).unwrap_or(0),
                    ),
                ],
            );
        }
        Ok(false)
    }

    /// Rings the doorbell unconditionally (no-op on an empty ring): one
    /// XPC crossing, zero object arguments, carrying only the descriptor
    /// count. The registered drain handler consumes the ring.
    ///
    /// On an async control transport the doorbell *launches*: the drain
    /// handler still runs right here (descriptors are consumed and
    /// completed), but the crossing's latency is banked against a
    /// completion token and settled — net of overlap — when the producer
    /// next harvests ([`DataPathChannel::reclaim_completions`] does).
    pub fn ring_doorbell(&self, kernel: &Kernel) -> XpcResult<()> {
        if self.ring.is_empty() {
            return Ok(());
        }
        let count = self.ring.len() as u32;
        let _span = kernel.trace_span("ring", "doorbell");
        kernel.trace_instant("ring", "ring", &[("descriptors", count as u64)]);
        if self.channel.transport_kind() == TransportKind::Async {
            self.channel.call_async(
                kernel,
                self.producer,
                &self.doorbell_proc,
                &[],
                &[XdrValue::UInt(count)],
            )?;
            // Launch now: the drain must run before the producer reuses
            // the ring, only the crossing latency is deferred.
            self.channel.flush(kernel)?;
        } else {
            self.channel.call(
                kernel,
                self.producer,
                &self.doorbell_proc,
                &[],
                &[XdrValue::UInt(count)],
            )?;
        }
        self.channel.bump(|s| s.doorbells += 1);
        // A budgeted or declining consumer may have left descriptors
        // parked; re-arm the deadline for the survivors instead of
        // disarming into the never-fires state.
        self.policy
            .rang_with_survivors(kernel.now_ns(), self.ring.len());
        Ok(())
    }

    /// Producer-side poll hook (call from a timer's work item): reclaims
    /// completions and rings the doorbell if the coalescing deadline has
    /// expired on parked descriptors.
    pub fn poll(&self, kernel: &Kernel) -> XpcResult<bool> {
        self.reclaim_completions(kernel);
        self.maybe_ring(kernel)
    }

    /// Drains the completion ring at the producer end. Pool-backed
    /// buffers are freed (ownership handback — completions may arrive in
    /// any order); the descriptors are returned for drivers that need
    /// their cookies (e.g. to recycle device receive slots).
    pub fn reclaim_completions(&self, kernel: &Kernel) -> Vec<Descriptor> {
        // Settle any launched doorbell crossings first: time spent
        // producing since the launch covers them as overlap.
        let _ = self.channel.harvest(kernel);
        let done = self.completions.drain(kernel, self.producer.cpu_class());
        if !done.is_empty() {
            kernel.trace_instant("ring", "reclaim", &[("completions", done.len() as u64)]);
        }
        if let Some(pool) = &self.pool {
            for d in &done {
                // A handle the pool rejects belongs to the driver (raw
                // descriptor); the driver reclaims it via the cookie.
                let _ = pool.free(d.buf);
            }
        }
        done
    }
}

impl std::fmt::Debug for DataPathChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DataPathChannel")
            .field("producer", &self.producer)
            .field("consumer", &self.consumer)
            .field("ring", &self.ring.name())
            .field("pending", &self.ring.len())
            .finish()
    }
}

/// One end's view of the shared rings: just `Rc`s to pinned memory, so
/// drain handlers can capture it without creating a reference cycle
/// through the channel's procedure table.
#[derive(Clone)]
pub struct DataPathEnd {
    ring: Rc<ShmRing>,
    completions: Rc<ShmRing>,
    pool: Option<Rc<BufPool>>,
    domain: Domain,
}

impl DataPathEnd {
    /// The payload pool, if the path owns one.
    pub fn pool(&self) -> Option<&Rc<BufPool>> {
        self.pool.as_ref()
    }

    /// Pops every posted descriptor (consumer side of the main ring),
    /// charging this end's CPU class per cache-line pull.
    pub fn consume(&self, kernel: &Kernel) -> Vec<Descriptor> {
        self.ring.drain(kernel, self.domain.cpu_class())
    }

    /// Pops one posted descriptor.
    pub fn consume_one(&self, kernel: &Kernel) -> Option<Descriptor> {
        self.ring.pop(kernel, self.domain.cpu_class())
    }

    /// Hands a finished descriptor back through the completion ring.
    pub fn complete(&self, kernel: &Kernel, desc: Descriptor) -> XpcResult<()> {
        self.completions
            .push(kernel, self.domain.cpu_class(), desc)
            .map_err(|_| {
                XpcError::Backpressure(format!(
                    "completion ring `{}` full",
                    self.completions.name()
                ))
            })
    }

    /// Poll-mode receive: probes the ring up to `budget` times, paying
    /// one [`costs::POLL_SPIN_NS`] probe per iteration whether or not a
    /// descriptor is waiting, and returns what it found. No interrupt
    /// entry, no doorbell crossing — the consumer pays a steady spin tax
    /// instead, which wins once the offered rate is high enough that
    /// probes rarely miss (the interrupt-vs-poll crossover).
    pub fn poll_and_reclaim(&self, kernel: &Kernel, budget: usize) -> Vec<Descriptor> {
        let mut got = Vec::new();
        let mut probes = 0u64;
        for _ in 0..budget {
            kernel.charge(self.domain.cpu_class(), costs::POLL_SPIN_NS);
            probes += 1;
            match self.ring.pop(kernel, self.domain.cpu_class()) {
                Some(d) => got.push(d),
                None => break,
            }
        }
        kernel.trace_instant(
            "rx",
            "poll_probe",
            &[("probes", probes), ("hits", got.len() as u64)],
        );
        got
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::{ChannelConfig, ProcDef};
    use decaf_simkernel::costs;
    use decaf_xdr::mask::MaskSet;
    use decaf_xdr::XdrSpec;
    use std::cell::RefCell;

    fn channel() -> Rc<XpcChannel> {
        Rc::new(XpcChannel::new(
            XdrSpec::parse("struct unused { int x; };").unwrap(),
            MaskSet::full(),
            ChannelConfig::kernel_user_shmring(),
            Domain::Nucleus,
            Domain::Decaf,
        ))
    }

    type SeenPayloads = Rc<RefCell<Vec<Vec<u8>>>>;

    /// A consumer that drains on the doorbell, records payloads, and
    /// completes every descriptor.
    fn register_drain(ch: &Rc<XpcChannel>, end: DataPathEnd, seen: SeenPayloads) {
        ch.register_proc(
            Domain::Decaf,
            ProcDef {
                name: "drain".into(),
                arg_types: vec![],
                handler: Rc::new(move |k, _, _, _| {
                    for d in end.consume(k) {
                        let pool = end.pool().expect("pool-backed path");
                        seen.borrow_mut()
                            .push(pool.read_payload(d.buf, d.len as usize).unwrap());
                        end.complete(k, d).unwrap();
                    }
                    XdrValue::Void
                }),
            },
        )
        .unwrap();
    }

    fn datapath(watermark: usize) -> (Kernel, Rc<DataPathChannel>, SeenPayloads) {
        let k = Kernel::new();
        let ch = channel();
        let dp = DataPathChannel::new(
            Rc::clone(&ch),
            Domain::Nucleus,
            "drain",
            Rc::new(ShmRing::new("tx", 32)),
            Rc::new(ShmRing::new("tx-done", 64)),
            Some(Rc::new(BufPool::with_capacity(2048, 32))),
            DoorbellPolicy::with_watermark(watermark),
        )
        .unwrap();
        let seen = Rc::new(RefCell::new(Vec::new()));
        register_drain(&ch, dp.end(Domain::Decaf), Rc::clone(&seen));
        (k, dp, seen)
    }

    #[test]
    fn watermark_batches_descriptors_per_doorbell() {
        let (k, dp, seen) = datapath(8);
        for i in 0..16u64 {
            dp.send(&k, &[i as u8; 600], i).unwrap();
        }
        assert_eq!(seen.borrow().len(), 16, "two watermark flushes");
        let s = dp.channel().stats();
        assert_eq!(s.doorbells, 2);
        assert_eq!(s.ring_posts, 16);
        assert!((s.descriptors_per_doorbell() - 8.0).abs() < 1e-9);
        assert_eq!(s.ring_occupancy_hwm, 8);
    }

    #[test]
    fn payload_bytes_never_cross_the_marshaler() {
        let (k, dp, seen) = datapath(4);
        for i in 0..8u64 {
            dp.send(&k, &[0x5a; 1500], i).unwrap();
        }
        let s = dp.channel().stats();
        // 8 × 1500 B of payload moved, but the channel marshaled only the
        // doorbell calls' empty argument lists.
        assert_eq!(seen.borrow().iter().map(Vec::len).sum::<usize>(), 12_000);
        assert!(
            s.bytes_in + s.bytes_out < 64,
            "only doorbell headers marshal: {} B",
            s.bytes_in + s.bytes_out
        );
        assert_eq!(k.stats().bytes_copied, 12_000, "one copy per payload");
    }

    #[test]
    fn deadline_flushes_a_lone_descriptor_via_poll() {
        let (k, dp, seen) = datapath(8);
        dp.send(&k, b"lone packet", 1).unwrap();
        assert!(seen.borrow().is_empty(), "below watermark, parked");
        assert!(!dp.poll(&k).unwrap(), "deadline not reached yet");
        k.run_for(costs::DOORBELL_COALESCE_NS + 1);
        assert!(dp.poll(&k).unwrap(), "coalescing deadline expired");
        assert_eq!(seen.borrow().len(), 1);
    }

    #[test]
    fn pool_exhaustion_forces_doorbell_then_backpressure() {
        let k = Kernel::new();
        let ch = channel();
        // Tiny pool, big watermark: sends outrun the doorbell policy.
        let dp = DataPathChannel::new(
            Rc::clone(&ch),
            Domain::Nucleus,
            "drain",
            Rc::new(ShmRing::new("tx", 8)),
            Rc::new(ShmRing::new("tx-done", 8)),
            Some(Rc::new(BufPool::with_capacity(256, 2))),
            DoorbellPolicy::with_watermark(64),
        )
        .unwrap();
        let seen = Rc::new(RefCell::new(Vec::new()));
        register_drain(&ch, dp.end(Domain::Decaf), Rc::clone(&seen));
        // The third send finds the pool exhausted, forces a doorbell (the
        // consumer drains and completes), reclaims, and proceeds.
        for i in 0..6u64 {
            dp.send(&k, &[1; 64], i).unwrap();
        }
        assert_eq!(seen.borrow().len(), 4, "forced flushes drained the ring");
        assert!(dp.pool().unwrap().stats().exhausted > 0);
    }

    #[test]
    fn raw_descriptors_round_trip_without_a_pool() {
        let k = Kernel::new();
        let ch = channel();
        let dp = DataPathChannel::new(
            Rc::clone(&ch),
            Domain::Nucleus,
            "drain",
            Rc::new(ShmRing::new("rx", 8)),
            Rc::new(ShmRing::new("rx-done", 8)),
            None,
            DoorbellPolicy::with_watermark(64),
        )
        .unwrap();
        let end = dp.end(Domain::Decaf);
        ch.register_proc(
            Domain::Decaf,
            ProcDef {
                name: "drain".into(),
                arg_types: vec![],
                handler: Rc::new(move |k, _, _, _| {
                    for d in end.consume(k) {
                        end.complete(k, d).unwrap();
                    }
                    XdrValue::Void
                }),
            },
        )
        .unwrap();
        use decaf_shmring::BufHandle;
        for slot in 0..3u64 {
            dp.post(
                &k,
                Descriptor {
                    buf: BufHandle(slot as u32),
                    len: 1500,
                    cookie: slot,
                },
            )
            .unwrap();
        }
        dp.ring_doorbell(&k).unwrap();
        let done = dp.reclaim_completions(&k);
        let cookies: Vec<u64> = done.iter().map(|d| d.cookie).collect();
        assert_eq!(cookies, vec![0, 1, 2], "handback preserves order");
    }

    #[test]
    fn async_doorbell_launches_and_reclaim_harvests() {
        let k = Kernel::new();
        let ch = Rc::new(XpcChannel::new(
            XdrSpec::parse("struct unused { int x; };").unwrap(),
            MaskSet::full(),
            ChannelConfig::kernel_user_async_shmring(),
            Domain::Nucleus,
            Domain::Decaf,
        ));
        let dp = DataPathChannel::new(
            Rc::clone(&ch),
            Domain::Nucleus,
            "drain",
            Rc::new(ShmRing::new("tx", 32)),
            Rc::new(ShmRing::new("tx-done", 64)),
            Some(Rc::new(BufPool::with_capacity(2048, 32))),
            DoorbellPolicy::with_watermark(4),
        )
        .unwrap();
        let seen = Rc::new(RefCell::new(Vec::new()));
        register_drain(&ch, dp.end(Domain::Decaf), Rc::clone(&seen));
        for i in 0..8u64 {
            dp.send(&k, &[0xa5; 600], i).unwrap();
        }
        assert_eq!(seen.borrow().len(), 8, "both doorbells drained inline");
        let s = ch.stats();
        assert_eq!(s.doorbells, 2, "watermark doorbells");
        assert_eq!(s.tokens_issued, 2, "each doorbell launched a token");
        // Producing covered part of the launched crossings; reclaiming
        // settles them. (Each send reclaims too, so only the second
        // batch's completions are still waiting here.)
        k.run_for(20_000);
        let done = dp.reclaim_completions(&k);
        assert_eq!(done.len(), 4);
        let s = ch.stats();
        assert_eq!(s.tokens_harvested, 2, "reclaim harvested both launches");
        assert!(s.overlap_ns > 0, "idle time covered the crossings");
    }

    #[test]
    fn partial_drain_survivor_still_deadline_fires() {
        // Regression for the disarm-with-occupancy hazard: a consumer
        // that drains one descriptor per doorbell (a drain budget) used
        // to leave the survivor parked with `armed_at == None`, so the
        // deadline could never fire and — below the watermark — the
        // survivor waited forever.
        let k = Kernel::new();
        let ch = channel();
        let dp = DataPathChannel::new(
            Rc::clone(&ch),
            Domain::Nucleus,
            "drain",
            Rc::new(ShmRing::new("rx", 8)),
            Rc::new(ShmRing::new("rx-done", 8)),
            None,
            DoorbellPolicy::with_watermark(2),
        )
        .unwrap();
        let end = dp.end(Domain::Decaf);
        let drained = Rc::new(RefCell::new(Vec::new()));
        {
            let drained = Rc::clone(&drained);
            ch.register_proc(
                Domain::Decaf,
                ProcDef {
                    name: "drain".into(),
                    arg_types: vec![],
                    handler: Rc::new(move |k, _, _, _| {
                        // Budget of one: take a single descriptor, leave
                        // the rest parked in the ring.
                        if let Some(d) = end.consume_one(k) {
                            drained.borrow_mut().push(d.cookie);
                            end.complete(k, d).unwrap();
                        }
                        XdrValue::Void
                    }),
                },
            )
            .unwrap();
        }
        use decaf_shmring::BufHandle;
        for slot in 0..2u64 {
            dp.post(
                &k,
                Descriptor {
                    buf: BufHandle(slot as u32),
                    len: 1500,
                    cookie: slot,
                },
            )
            .unwrap();
        }
        assert!(dp.maybe_ring(&k).unwrap(), "watermark doorbell rings");
        assert_eq!(drained.borrow().as_slice(), &[0], "budget drained one");
        assert_eq!(dp.pending(), 1, "survivor parked below the watermark");
        assert!(!dp.poll(&k).unwrap(), "survivor window not expired yet");
        k.run_for(costs::DOORBELL_COALESCE_NS + 1);
        assert!(
            dp.poll(&k).unwrap(),
            "survivor must deadline-fire within one window"
        );
        assert_eq!(drained.borrow().as_slice(), &[0, 1]);
        assert_eq!(dp.pending(), 0);
    }

    #[test]
    fn poll_and_reclaim_respects_budget_and_charges_spin() {
        let k = Kernel::new();
        let ch = channel();
        let dp = DataPathChannel::new(
            Rc::clone(&ch),
            Domain::Nucleus,
            "drain",
            Rc::new(ShmRing::new("rx", 8)),
            Rc::new(ShmRing::new("rx-done", 8)),
            None,
            DoorbellPolicy::with_watermark(64),
        )
        .unwrap();
        let end = dp.end(Domain::Decaf);
        use decaf_shmring::BufHandle;
        for slot in 0..3u64 {
            dp.post(
                &k,
                Descriptor {
                    buf: BufHandle(slot as u32),
                    len: 1500,
                    cookie: slot,
                },
            )
            .unwrap();
        }
        let before = k.snapshot().user_busy_ns;
        let got = end.poll_and_reclaim(&k, 2);
        assert_eq!(got.len(), 2, "budget caps a burst");
        let got = end.poll_and_reclaim(&k, 8);
        assert_eq!(got.len(), 1, "remainder drained, then a miss breaks");
        // 2 + 2 probes (the second call pays one hit and one miss).
        let spun = k.snapshot().user_busy_ns - before;
        assert!(
            spun >= 4 * costs::POLL_SPIN_NS,
            "every probe pays the spin tax: {spun} ns"
        );
        let empty = end.poll_and_reclaim(&k, 8);
        assert!(empty.is_empty(), "an idle probe returns nothing");
        assert_eq!(ch.stats().doorbells, 0, "poll mode never rang a doorbell");
    }
}
