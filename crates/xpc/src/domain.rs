//! Protection domains of the Decaf architecture.

use decaf_simkernel::CpuClass;
use std::fmt;

/// One of the three Decaf protection domains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    /// The driver nucleus: kernel-mode C code (interrupt handlers, data
    /// path, spinlock-holding code).
    Nucleus,
    /// The driver library: user-level C code (migration staging ground and
    /// helper routines the managed language cannot express).
    Library,
    /// The decaf driver: user-level managed-language code (Java in the
    /// paper, safe Rust here).
    Decaf,
}

impl Domain {
    /// Which CPU class this domain's execution time is charged to.
    pub fn cpu_class(self) -> CpuClass {
        match self {
            Domain::Nucleus => CpuClass::Kernel,
            Domain::Library | Domain::Decaf => CpuClass::User,
        }
    }

    /// Whether the domain runs at user level.
    pub fn is_user(self) -> bool {
        !matches!(self, Domain::Nucleus)
    }

    /// The heap address base for this domain.
    ///
    /// Distinct bases keep address spaces disjoint, which is what makes
    /// the "object coming home" check in graph unmarshaling exact.
    pub fn heap_base(self) -> u64 {
        match self {
            Domain::Nucleus => 0x1000_0000,
            Domain::Library => 0x4000_0000,
            Domain::Decaf => 0x8000_0000,
        }
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Domain::Nucleus => write!(f, "driver nucleus"),
            Domain::Library => write!(f, "driver library"),
            Domain::Decaf => write!(f, "decaf driver"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_classes() {
        assert_eq!(Domain::Nucleus.cpu_class(), CpuClass::Kernel);
        assert_eq!(Domain::Library.cpu_class(), CpuClass::User);
        assert_eq!(Domain::Decaf.cpu_class(), CpuClass::User);
    }

    #[test]
    fn bases_are_disjoint_and_ordered() {
        assert!(Domain::Nucleus.heap_base() < Domain::Library.heap_base());
        assert!(Domain::Library.heap_base() < Domain::Decaf.heap_base());
    }

    #[test]
    fn user_levels() {
        assert!(!Domain::Nucleus.is_user());
        assert!(Domain::Library.is_user());
        assert!(Domain::Decaf.is_user());
    }
}
