//! XPC channels: stubs, control transfer and object transfer.
//!
//! An [`XpcChannel`] connects two domains. A call performs the six steps
//! the paper's Jeannie stubs perform (§3.1.1, Figure 2):
//!
//! 1. the caller invokes the stub (`XpcChannel::call`);
//! 2. the stub consults the object tracker to translate parameters to the
//!    addresses the peer knows them by;
//! 3. it marshals the parameters with the generated XDR routines
//!    (field-selective, cycle-aware);
//! 4. control transfers to the target domain (cost depends on the
//!    [`Transport`] and whether a protection boundary is crossed);
//! 5. the target unmarshals, consulting *its* object tracker so existing
//!    objects update in place, then the handler runs;
//! 6. out-parameters marshal back and the caller's objects are updated.
//!
//! A panic in a user-level handler is caught and surfaced as
//! [`XpcError::DecafFault`]: the kernel side survives, as it would with a
//! crashed user process.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;

use decaf_simkernel::{costs, Kernel, ViolationKind};
use decaf_xdr::graph::{self, CAddr, ObjHeap};
use decaf_xdr::mask::{Direction, MaskSet};
use decaf_xdr::{XdrSpec, XdrValue};

use crate::domain::Domain;
use crate::error::{XpcError, XpcResult};
use crate::tracker::{ObjectTracker, TrackerStats};

/// How control transfers to the target domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// Reuse the calling thread (the optimization of paper §2.3 for
    /// co-located domains).
    InProc,
    /// Hand off to a dedicated thread in the target domain; costs a
    /// scheduler round trip each way.
    Threaded,
}

/// Static configuration of a channel.
#[derive(Debug, Clone, Copy)]
pub struct ChannelConfig {
    /// Whether the two ends sit in different protection domains
    /// (kernel/user crossing cost applies).
    pub domain_crossing: bool,
    /// Whether the target end is a different language (C↔Java): adds the
    /// unmarshal-in-C + re-marshal-in-Java conversion cost the paper
    /// identifies as the dominant initialization overhead (§4.2).
    pub cross_language: bool,
    /// Control-transfer mechanism.
    pub transport: Transport,
}

impl ChannelConfig {
    /// The kernel↔user configuration used between nucleus and decaf
    /// driver in the paper's implementation.
    pub fn kernel_user() -> Self {
        ChannelConfig {
            domain_crossing: true,
            cross_language: true,
            transport: Transport::InProc,
        }
    }

    /// A same-process C↔Java channel (driver library ↔ decaf driver).
    pub fn cross_language_only() -> Self {
        ChannelConfig {
            domain_crossing: false,
            cross_language: true,
            transport: Transport::InProc,
        }
    }
}

/// Counters for one channel.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ChannelStats {
    /// Completed call/return round trips (the paper's "User/Kernel
    /// Crossings" column counts these).
    pub round_trips: u64,
    /// One-way transfers (2× round trips unless a call faults).
    pub one_way_crossings: u64,
    /// Marshaled bytes, caller → target.
    pub bytes_in: u64,
    /// Marshaled bytes, target → caller.
    pub bytes_out: u64,
    /// Handler panics caught.
    pub faults: u64,
}

/// A procedure registered at one end of a channel.
#[derive(Clone)]
pub struct ProcDef {
    /// Procedure name (matches the entry-point name from DriverSlicer).
    pub name: String,
    /// Struct type of each object argument, in order.
    pub arg_types: Vec<String>,
    /// The implementation.
    pub handler: ProcHandler,
}

/// Handler signature: object arguments arrive as local heap addresses,
/// scalars as XDR values; the scalar return value travels back.
pub type ProcHandler = Rc<dyn Fn(&Kernel, &XpcChannel, &[Option<CAddr>], &[XdrValue]) -> XdrValue>;

struct DomainEnd {
    domain: Domain,
    heap: Rc<RefCell<ObjHeap>>,
    tracker: RefCell<ObjectTracker>,
    procs: RefCell<HashMap<String, ProcDef>>,
}

impl DomainEnd {
    fn new(domain: Domain) -> Self {
        DomainEnd {
            domain,
            heap: Rc::new(RefCell::new(ObjHeap::with_base(domain.heap_base()))),
            tracker: RefCell::new(ObjectTracker::new()),
            procs: RefCell::new(HashMap::new()),
        }
    }
}

/// A two-ended XPC channel.
pub struct XpcChannel {
    spec: XdrSpec,
    masks: MaskSet,
    config: ChannelConfig,
    a: DomainEnd,
    b: DomainEnd,
    stats: Cell<ChannelStats>,
}

impl XpcChannel {
    /// Creates a channel between two domains over a shared interface spec
    /// and mask set (both produced by DriverSlicer).
    pub fn new(spec: XdrSpec, masks: MaskSet, config: ChannelConfig, a: Domain, b: Domain) -> Self {
        assert_ne!(a, b, "a channel needs two distinct domains");
        XpcChannel {
            spec,
            masks,
            config,
            a: DomainEnd::new(a),
            b: DomainEnd::new(b),
            stats: Cell::new(ChannelStats::default()),
        }
    }

    fn end(&self, domain: Domain) -> XpcResult<&DomainEnd> {
        if self.a.domain == domain {
            Ok(&self.a)
        } else if self.b.domain == domain {
            Ok(&self.b)
        } else {
            Err(XpcError::UnknownDomain(domain.to_string()))
        }
    }

    fn peer(&self, domain: Domain) -> XpcResult<&DomainEnd> {
        if self.a.domain == domain {
            Ok(&self.b)
        } else if self.b.domain == domain {
            Ok(&self.a)
        } else {
            Err(XpcError::UnknownDomain(domain.to_string()))
        }
    }

    /// The heap of one end (driver code allocates its structures here).
    ///
    /// # Panics
    /// Panics if `domain` is not an end of this channel.
    pub fn heap(&self, domain: Domain) -> Rc<RefCell<ObjHeap>> {
        Rc::clone(&self.end(domain).expect("domain not on this channel").heap)
    }

    /// The interface spec this channel marshals against.
    pub fn spec(&self) -> &XdrSpec {
        &self.spec
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ChannelStats {
        self.stats.get()
    }

    /// Object-tracker counters for one end.
    pub fn tracker_stats(&self, domain: Domain) -> TrackerStats {
        self.end(domain)
            .map(|e| e.tracker.borrow().stats())
            .unwrap_or_default()
    }

    /// Live tracker associations at one end (test/diagnostic helper).
    pub fn tracker_len(&self, domain: Domain) -> usize {
        self.end(domain)
            .map(|e| e.tracker.borrow().len())
            .unwrap_or(0)
    }

    /// Registers a procedure at `domain`'s end.
    pub fn register_proc(&self, domain: Domain, def: ProcDef) -> XpcResult<()> {
        self.end(domain)?
            .procs
            .borrow_mut()
            .insert(def.name.clone(), def);
        Ok(())
    }

    /// Names of procedures registered at `domain`'s end, sorted.
    pub fn proc_names(&self, domain: Domain) -> Vec<String> {
        match self.end(domain) {
            Ok(e) => {
                let mut v: Vec<_> = e.procs.borrow().keys().cloned().collect();
                v.sort();
                v
            }
            Err(_) => Vec::new(),
        }
    }

    /// Releases a shared object at one end: drops its tracker association
    /// and frees it from the heap (the explicit release of §3.1.2).
    pub fn release_object(&self, domain: Domain, local: CAddr) -> XpcResult<()> {
        let e = self.end(domain)?;
        e.tracker.borrow_mut().release_local(local);
        e.heap.borrow_mut().free(local);
        Ok(())
    }

    /// Allocates a schema-default structure in one end's heap.
    pub fn alloc_shared(&self, domain: Domain, type_name: &str) -> XpcResult<CAddr> {
        let e = self.end(domain)?;
        let mut heap = e.heap.borrow_mut();
        heap.alloc_default(type_name, &self.spec)
            .map_err(XpcError::Xdr)
    }

    /// Clears one end's heap and tracker — the decaf-driver restart path
    /// after a fault.
    pub fn reset_end(&self, domain: Domain) -> XpcResult<()> {
        let e = self.end(domain)?;
        *e.heap.borrow_mut() = ObjHeap::with_base(e.domain.heap_base());
        *e.tracker.borrow_mut() = ObjectTracker::new();
        Ok(())
    }

    fn bump(&self, f: impl FnOnce(&mut ChannelStats)) {
        let mut s = self.stats.get();
        f(&mut s);
        self.stats.set(s);
    }

    fn charge_transfer(&self, kernel: &Kernel, payer: Domain, bytes: usize) {
        self.bump(|s| s.one_way_crossings += 1);
        let class = payer.cpu_class();
        if self.config.domain_crossing {
            kernel.charge(class, costs::DOMAIN_CROSSING_NS);
        }
        if let Transport::Threaded = self.config.transport {
            kernel.charge(class, costs::THREAD_HANDOFF_NS);
        }
        kernel.charge(class, bytes as u64 * costs::MARSHAL_BYTE_NS);
    }

    /// Performs one cross-domain procedure call from `from` to its peer.
    ///
    /// `args` are object parameters as addresses in the *caller's* heap;
    /// `scalars` travel by value. Returns the handler's scalar result.
    pub fn call(
        &self,
        kernel: &Kernel,
        from: Domain,
        proc: &str,
        args: &[Option<CAddr>],
        scalars: &[XdrValue],
    ) -> XpcResult<XdrValue> {
        let caller = self.end(from)?;
        let target = self.peer(from)?;

        // Upcalls to user level are illegal from atomic context (§3.1.3);
        // record the violation but keep simulating.
        if target.domain.is_user() && !kernel.may_block() {
            kernel.record_violation(
                ViolationKind::UpcallInAtomic,
                format!("XPC `{proc}` to {} from atomic context", target.domain),
            );
        }

        let def =
            target
                .procs
                .borrow()
                .get(proc)
                .cloned()
                .ok_or_else(|| XpcError::UnknownProc {
                    domain: target.domain.to_string(),
                    proc: proc.to_string(),
                })?;

        // Steps 2+3: tracker translation and argument marshaling.
        let wire_in = {
            let heap = caller.heap.borrow();
            let tracker = &caller.tracker;
            graph::marshal_args_translated(
                &heap,
                args,
                &self.spec,
                &self.masks,
                Direction::In,
                &|local| tracker.borrow().canonical_for(local).unwrap_or(local),
            )?
        };
        kernel.charge(
            from.cpu_class(),
            wire_in.len() as u64 * costs::MARSHAL_BYTE_NS,
        );
        self.bump(|s| s.bytes_in += wire_in.len() as u64);

        // Step 4: control transfer.
        self.charge_transfer(kernel, from, wire_in.len());

        // Step 5: unmarshal at the target, tracker-aware.
        let arg_type_refs: Vec<&str> = def.arg_types.iter().map(String::as_str).collect();
        let locals = {
            let mut heap = target.heap.borrow_mut();
            let mut tracker = target.tracker.borrow_mut();
            graph::unmarshal_args(
                &wire_in,
                &arg_type_refs,
                &mut heap,
                &self.spec,
                &self.masks,
                Direction::In,
                &mut *tracker,
            )?
        };
        kernel.charge(
            target.domain.cpu_class(),
            wire_in.len() as u64 * costs::MARSHAL_BYTE_NS,
        );
        if self.config.cross_language {
            // The C-side unmarshal + Java-side re-marshal detour (§4.2).
            kernel.charge(
                target.domain.cpu_class(),
                args.len() as u64 * costs::CROSS_LANGUAGE_OBJECT_NS
                    + wire_in.len() as u64 * costs::MARSHAL_BYTE_NS,
            );
        }

        // Dispatch, catching user-level faults.
        let handler = Rc::clone(&def.handler);
        let result = catch_unwind(AssertUnwindSafe(|| handler(kernel, self, &locals, scalars)));
        let ret = match result {
            Ok(v) => v,
            Err(payload) => {
                self.bump(|s| s.faults += 1);
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "panic".to_string());
                return Err(XpcError::DecafFault(msg));
            }
        };

        // Step 6: marshal out-parameters back and update caller objects.
        let wire_out = {
            let heap = target.heap.borrow();
            let tracker = &target.tracker;
            graph::marshal_args_translated(
                &heap,
                &locals,
                &self.spec,
                &self.masks,
                Direction::Out,
                &|local| tracker.borrow().canonical_for(local).unwrap_or(local),
            )?
        };
        kernel.charge(
            target.domain.cpu_class(),
            wire_out.len() as u64 * costs::MARSHAL_BYTE_NS,
        );
        self.bump(|s| s.bytes_out += wire_out.len() as u64);
        self.charge_transfer(kernel, target.domain, wire_out.len());

        {
            let mut heap = caller.heap.borrow_mut();
            let mut tracker = caller.tracker.borrow_mut();
            graph::unmarshal_args(
                &wire_out,
                &arg_type_refs,
                &mut heap,
                &self.spec,
                &self.masks,
                Direction::Out,
                &mut *tracker,
            )?;
        }
        kernel.charge(
            from.cpu_class(),
            wire_out.len() as u64 * costs::MARSHAL_BYTE_NS,
        );

        self.bump(|s| s.round_trips += 1);
        Ok(ret)
    }
}

/// An owned shared object that releases itself when dropped.
///
/// The paper manages shared objects manually but proposes custom
/// finalizers so "the Java garbage collector frees the object" and the
/// associated kernel memory with it (§5.1, *Potential Benefit: Garbage
/// collection*). Rust's `Drop` is that finalizer: when the guard goes out
/// of scope the tracker association is removed and the heap object freed,
/// which "can simplify exception-handling code and prevent resource leaks
/// on error paths, a common driver problem".
pub struct SharedObject {
    channel: Rc<XpcChannel>,
    domain: Domain,
    addr: CAddr,
}

impl SharedObject {
    /// Allocates a schema-default structure owned by this guard.
    pub fn new(
        channel: Rc<XpcChannel>,
        domain: Domain,
        type_name: &str,
    ) -> XpcResult<SharedObject> {
        let addr = channel.alloc_shared(domain, type_name)?;
        Ok(SharedObject {
            channel,
            domain,
            addr,
        })
    }

    /// The heap address of the object (pass as an XPC argument).
    pub fn addr(&self) -> CAddr {
        self.addr
    }

    /// The domain owning the object.
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// Releases ownership without freeing (hand the object to the driver
    /// for its full lifetime).
    pub fn into_raw(self) -> CAddr {
        let addr = self.addr;
        std::mem::forget(self);
        addr
    }
}

impl Drop for SharedObject {
    fn drop(&mut self) {
        let _ = self.channel.release_object(self.domain, self.addr);
    }
}

impl std::fmt::Debug for SharedObject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedObject")
            .field("domain", &self.domain)
            .field("addr", &format_args!("{:#x}", self.addr))
            .finish()
    }
}

impl std::fmt::Debug for XpcChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("XpcChannel")
            .field("a", &self.a.domain)
            .field("b", &self.b.domain)
            .field("stats", &self.stats.get())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decaf_xdr::graph::FieldVal;
    use decaf_xdr::mask::{Access, FieldMask};

    fn spec() -> XdrSpec {
        XdrSpec::parse(
            "struct adapter { int msg_enable; int link_up; struct ring *tx; };\n\
             struct ring { int count; };",
        )
        .unwrap()
    }

    fn channel() -> XpcChannel {
        XpcChannel::new(
            spec(),
            MaskSet::full(),
            ChannelConfig::kernel_user(),
            Domain::Nucleus,
            Domain::Decaf,
        )
    }

    fn alloc_adapter(ch: &XpcChannel) -> CAddr {
        let heap = ch.heap(Domain::Nucleus);
        let mut h = heap.borrow_mut();
        let ring = h.alloc(
            "ring",
            vec![("count".into(), FieldVal::Scalar(XdrValue::Int(256)))],
        );
        h.alloc(
            "adapter",
            vec![
                ("msg_enable".into(), FieldVal::Scalar(XdrValue::Int(0))),
                ("link_up".into(), FieldVal::Scalar(XdrValue::Int(0))),
                ("tx".into(), FieldVal::Ptr(Some(ring))),
            ],
        )
    }

    #[test]
    fn upcall_executes_handler_and_returns_scalar() {
        let k = Kernel::new();
        let ch = channel();
        ch.register_proc(
            Domain::Decaf,
            ProcDef {
                name: "e1000_probe".into(),
                arg_types: vec!["adapter".into()],
                handler: Rc::new(|_k, ch, args, _scalars| {
                    let heap = ch.heap(Domain::Decaf);
                    let h = heap.borrow();
                    let a = args[0].unwrap();
                    // The decaf driver sees the marshaled ring through the
                    // adapter pointer.
                    let ring = h.ptr(a, "tx").unwrap().unwrap();
                    h.scalar(ring, "count").unwrap().clone()
                }),
            },
        )
        .unwrap();
        let adapter = alloc_adapter(&ch);
        let ret = ch
            .call(&k, Domain::Nucleus, "e1000_probe", &[Some(adapter)], &[])
            .unwrap();
        assert_eq!(ret, XdrValue::Int(256));
        let s = ch.stats();
        assert_eq!(s.round_trips, 1);
        assert_eq!(s.one_way_crossings, 2);
        assert!(s.bytes_in > 0);
    }

    #[test]
    fn out_parameters_update_caller_objects_in_place() {
        let k = Kernel::new();
        let ch = channel();
        ch.register_proc(
            Domain::Decaf,
            ProcDef {
                name: "set_link".into(),
                arg_types: vec!["adapter".into()],
                handler: Rc::new(|_k, ch, args, _| {
                    let heap = ch.heap(Domain::Decaf);
                    let mut h = heap.borrow_mut();
                    h.set_scalar(args[0].unwrap(), "link_up", XdrValue::Int(1))
                        .unwrap();
                    XdrValue::Int(0)
                }),
            },
        )
        .unwrap();
        let adapter = alloc_adapter(&ch);
        ch.call(&k, Domain::Nucleus, "set_link", &[Some(adapter)], &[])
            .unwrap();
        let heap = ch.heap(Domain::Nucleus);
        let h = heap.borrow();
        assert_eq!(h.scalar(adapter, "link_up").unwrap(), &XdrValue::Int(1));
    }

    #[test]
    fn repeated_calls_reuse_target_objects() {
        let k = Kernel::new();
        let ch = channel();
        ch.register_proc(
            Domain::Decaf,
            ProcDef {
                name: "touch".into(),
                arg_types: vec!["adapter".into()],
                handler: Rc::new(|_, _, _, _| XdrValue::Int(0)),
            },
        )
        .unwrap();
        let adapter = alloc_adapter(&ch);
        for _ in 0..3 {
            ch.call(&k, Domain::Nucleus, "touch", &[Some(adapter)], &[])
                .unwrap();
        }
        // Adapter + embedded ring: exactly two objects at the decaf end,
        // no matter how many calls were made.
        assert_eq!(ch.heap(Domain::Decaf).borrow().len(), 2);
        let ts = ch.tracker_stats(Domain::Decaf);
        assert_eq!(ts.associations, 2);
        assert!(ts.hits >= 4, "subsequent calls hit the tracker");
    }

    #[test]
    fn nested_downcall_from_handler_works() {
        let k = Kernel::new();
        let ch = Rc::new(channel());
        ch.register_proc(
            Domain::Nucleus,
            ProcDef {
                name: "pci_read_config".into(),
                arg_types: vec![],
                handler: Rc::new(|_, _, _, scalars| {
                    XdrValue::Int(scalars[0].as_int().unwrap() + 0x100)
                }),
            },
        )
        .unwrap();
        ch.register_proc(
            Domain::Decaf,
            ProcDef {
                name: "probe".into(),
                arg_types: vec![],
                handler: Rc::new(|k, ch, _, _| {
                    // The decaf driver calls back into the kernel.
                    ch.call(
                        k,
                        Domain::Decaf,
                        "pci_read_config",
                        &[],
                        &[XdrValue::Int(4)],
                    )
                    .unwrap()
                }),
            },
        )
        .unwrap();
        let ret = ch.call(&k, Domain::Nucleus, "probe", &[], &[]).unwrap();
        assert_eq!(ret, XdrValue::Int(0x104));
        assert_eq!(ch.stats().round_trips, 2);
    }

    #[test]
    fn unknown_proc_reported() {
        let k = Kernel::new();
        let ch = channel();
        let err = ch.call(&k, Domain::Nucleus, "nope", &[], &[]).unwrap_err();
        assert!(matches!(err, XpcError::UnknownProc { .. }));
    }

    #[test]
    fn decaf_fault_is_contained() {
        let k = Kernel::new();
        let ch = channel();
        ch.register_proc(
            Domain::Decaf,
            ProcDef {
                name: "crash".into(),
                arg_types: vec![],
                handler: Rc::new(|_, _, _, _| panic!("null deref in decaf driver")),
            },
        )
        .unwrap();
        let err = ch.call(&k, Domain::Nucleus, "crash", &[], &[]).unwrap_err();
        match err {
            XpcError::DecafFault(msg) => assert!(msg.contains("null deref")),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(ch.stats().faults, 1);
        // The channel still works after resetting the faulted end.
        ch.reset_end(Domain::Decaf).unwrap();
        assert_eq!(ch.heap(Domain::Decaf).borrow().len(), 0);
    }

    #[test]
    fn upcall_from_atomic_context_flagged() {
        let k = Kernel::new();
        let ch = channel();
        ch.register_proc(
            Domain::Decaf,
            ProcDef {
                name: "bad".into(),
                arg_types: vec![],
                handler: Rc::new(|_, _, _, _| XdrValue::Void),
            },
        )
        .unwrap();
        k.enter_atomic();
        ch.call(&k, Domain::Nucleus, "bad", &[], &[]).unwrap();
        k.leave_atomic();
        assert!(k
            .violations()
            .iter()
            .any(|v| v.kind == ViolationKind::UpcallInAtomic));
    }

    #[test]
    fn field_masks_reduce_traffic() {
        let k = Kernel::new();
        let mut masks = MaskSet::selective();
        let mut m = FieldMask::new();
        m.record("msg_enable", Access::Read);
        masks.insert("adapter", m);
        let ch = XpcChannel::new(
            spec(),
            masks,
            ChannelConfig::kernel_user(),
            Domain::Nucleus,
            Domain::Decaf,
        );
        ch.register_proc(
            Domain::Decaf,
            ProcDef {
                name: "peek".into(),
                arg_types: vec!["adapter".into()],
                handler: Rc::new(|_, _, _, _| XdrValue::Int(0)),
            },
        )
        .unwrap();
        let adapter = alloc_adapter(&ch);
        ch.call(&k, Domain::Nucleus, "peek", &[Some(adapter)], &[])
            .unwrap();
        let s = ch.stats();
        // Only one int + the object header cross; the ring never does.
        assert!(
            s.bytes_in < 32,
            "selective masks keep traffic tiny: {}",
            s.bytes_in
        );
        assert_eq!(ch.heap(Domain::Decaf).borrow().len(), 1);
    }

    #[test]
    fn user_and_kernel_time_both_charged() {
        let k = Kernel::new();
        let ch = channel();
        ch.register_proc(
            Domain::Decaf,
            ProcDef {
                name: "noop".into(),
                arg_types: vec!["adapter".into()],
                handler: Rc::new(|_, _, _, _| XdrValue::Void),
            },
        )
        .unwrap();
        let adapter = alloc_adapter(&ch);
        let before = k.snapshot();
        ch.call(&k, Domain::Nucleus, "noop", &[Some(adapter)], &[])
            .unwrap();
        let after = k.snapshot();
        assert!(after.kernel_busy_ns > before.kernel_busy_ns);
        assert!(after.user_busy_ns > before.user_busy_ns);
    }

    #[test]
    fn shared_object_guard_frees_on_drop() {
        // The finalizer pattern of paper §5.1: dropping the guard releases
        // the object even on early-return error paths.
        let k = Kernel::new();
        let ch = Rc::new(channel());
        ch.register_proc(
            Domain::Decaf,
            ProcDef {
                name: "touch".into(),
                arg_types: vec!["adapter".into()],
                handler: Rc::new(|_, _, _, _| XdrValue::Void),
            },
        )
        .unwrap();
        let heap_len_before = ch.heap(Domain::Nucleus).borrow().len();
        {
            let obj = SharedObject::new(Rc::clone(&ch), Domain::Nucleus, "adapter").unwrap();
            ch.call(&k, Domain::Nucleus, "touch", &[Some(obj.addr())], &[])
                .unwrap();
            assert_eq!(ch.heap(Domain::Nucleus).borrow().len(), heap_len_before + 1);
        }
        // Guard dropped: nucleus copy freed, association released.
        assert_eq!(ch.heap(Domain::Nucleus).borrow().len(), heap_len_before);
    }

    #[test]
    fn shared_object_into_raw_keeps_it_alive() {
        let ch = Rc::new(channel());
        let obj = SharedObject::new(Rc::clone(&ch), Domain::Nucleus, "ring").unwrap();
        let addr = obj.into_raw();
        assert!(ch.heap(Domain::Nucleus).borrow().contains(addr));
    }

    #[test]
    fn release_object_forgets_association() {
        let k = Kernel::new();
        let ch = channel();
        ch.register_proc(
            Domain::Decaf,
            ProcDef {
                name: "touch".into(),
                arg_types: vec!["adapter".into()],
                handler: Rc::new(|_, _, _, _| XdrValue::Void),
            },
        )
        .unwrap();
        let adapter = alloc_adapter(&ch);
        ch.call(&k, Domain::Nucleus, "touch", &[Some(adapter)], &[])
            .unwrap();
        let decaf_heap_len = ch.heap(Domain::Decaf).borrow().len();
        assert_eq!(decaf_heap_len, 2);
        // Release the decaf-side adapter object explicitly.
        let assoc: Vec<_> = {
            let heap = ch.heap(Domain::Decaf);
            let h = heap.borrow();
            h.iter().map(|(a, o)| (a, o.type_name.clone())).collect()
        };
        let adapter_local = assoc
            .iter()
            .find(|(_, t)| t == "adapter")
            .map(|(a, _)| *a)
            .unwrap();
        ch.release_object(Domain::Decaf, adapter_local).unwrap();
        assert_eq!(ch.heap(Domain::Decaf).borrow().len(), 1);
        // The next call re-allocates it fresh.
        ch.call(&k, Domain::Nucleus, "touch", &[Some(adapter)], &[])
            .unwrap();
        assert_eq!(ch.heap(Domain::Decaf).borrow().len(), 2);
    }
}
