//! XPC channels: the stub layer over pluggable transports.
//!
//! An [`XpcChannel`] connects two domains. It is split into two layers:
//!
//! * the **stub layer** (this module) performs the six steps the paper's
//!   Jeannie stubs perform (§3.1.1, Figure 2) — tracker translation,
//!   marshal, transfer, unmarshal, dispatch, out-parameter return;
//! * the **[`Transport`]** (see [`crate::transport`]) decides how control
//!   reaches the other side: thread reuse ([`TransportKind::InProc`]),
//!   dedicated-thread handoff ([`TransportKind::Threaded`]), or deferred
//!   batching ([`TransportKind::Batched`]).
//!
//! A call performs:
//!
//! 1. the caller invokes the stub (`XpcChannel::call`, or
//!    `XpcChannel::call_deferred` for result-free calls);
//! 2. the stub consults the object tracker to translate parameters to the
//!    addresses the peer knows them by;
//! 3. it marshals the parameters with the generated XDR routines
//!    (field-selective, cycle-aware, and — when `ChannelConfig::delta` is
//!    on — dirty-field deltas for objects the peer has already seen);
//! 4. control transfers to the target domain (cost priced by the
//!    [`Transport`] and whether a protection boundary is crossed);
//! 5. the target unmarshals, consulting *its* object tracker so existing
//!    objects update in place, then the handler runs;
//! 6. out-parameters marshal back and the caller's objects are updated.
//!
//! On a batched transport, deferred calls park in the transport's queue;
//! the whole batch later crosses in a *single* round trip — its arguments
//! share one seen-table (cross-call structure sharing) and the flush is
//! charged one crossing, not one per call.
//!
//! On an *async* transport ([`TransportKind::Async`]), a flush goes one
//! step further: it **launches** the crossing instead of blocking on it.
//! [`XpcChannel::call_async`] returns a
//! [`crate::transport::CompletionToken`]; the batch's crossing latency is
//! banked at launch and settled by [`XpcChannel::harvest`] (or
//! [`XpcChannel::wait_token`]) — computation that ran while the crossing
//! was in flight counts as overlap ([`ChannelStats::overlap_ns`]), and
//! only the *uncovered* remainder is charged as wait. Data effects
//! (unmarshal, dispatch, out-parameters) still land at flush time; only
//! the latency accounting is deferred.
//!
//! A panic in a user-level handler is caught and surfaced as
//! [`XpcError::DecafFault`]: the kernel side survives, as it would with a
//! crashed user process.

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;

use decaf_simkernel::{costs, CpuClass, Kernel, TimerId, ViolationKind};
use decaf_xdr::graph::{self, CAddr, DeltaHook, NoDelta, ObjHeap};
use decaf_xdr::mask::{Direction, MaskSet};
use decaf_xdr::{XdrSpec, XdrValue};

use crate::domain::Domain;
use crate::error::{XpcError, XpcResult};
use crate::tracker::{ObjectTracker, TrackerStats};
use crate::transport::{self, CompletionToken, DeferredCall, Transport, TransportKind};

/// Static configuration of a channel.
#[derive(Debug, Clone, Copy)]
pub struct ChannelConfig {
    /// Whether the two ends sit in different protection domains
    /// (kernel/user crossing cost applies).
    pub domain_crossing: bool,
    /// Whether the target end is a different language (C↔Java): adds the
    /// unmarshal-in-C + re-marshal-in-Java conversion cost the paper
    /// identifies as the dominant initialization overhead (§4.2).
    pub cross_language: bool,
    /// Control-transfer mechanism.
    pub transport: TransportKind,
    /// Whether repeat transfers of an object marshal only fields written
    /// since its last crossing (dirty-field delta marshaling).
    pub delta: bool,
    /// Whether the channel's *data path* rides a pinned shared-memory
    /// descriptor ring (`DataPathChannel`): payload bytes stay in the
    /// shared buffer pool and only 16-byte descriptors plus a coalesced
    /// doorbell cross the boundary. Control paths are unaffected.
    pub shmring: bool,
    /// Flush watermark of a queueing transport: deferred calls queued
    /// beyond this point force a flush. Ignored by non-queueing
    /// transports.
    pub batch_capacity: usize,
    /// Adaptive-batching deadline of a queueing transport: a partial
    /// batch flushes once its oldest call has waited this much virtual
    /// time. Ignored by non-queueing transports.
    pub batch_deadline_ns: u64,
}

impl ChannelConfig {
    /// The kernel↔user configuration used between nucleus and decaf
    /// driver in the paper's implementation: thread reuse, per-call
    /// re-marshaling.
    pub fn kernel_user() -> Self {
        ChannelConfig {
            domain_crossing: true,
            cross_language: true,
            transport: TransportKind::InProc,
            delta: false,
            shmring: false,
            batch_capacity: transport::DEFAULT_BATCH_CAPACITY,
            batch_deadline_ns: transport::DEFAULT_BATCH_DEADLINE_NS,
        }
    }

    /// The optimized kernel↔user configuration: batched transport plus
    /// dirty-field delta marshaling. Used by the decaf driver builds for
    /// their configuration/control paths.
    pub fn kernel_user_batched() -> Self {
        ChannelConfig {
            transport: TransportKind::Batched,
            delta: true,
            ..ChannelConfig::kernel_user()
        }
    }

    /// The user-level data-path configuration: everything
    /// [`ChannelConfig::kernel_user_batched`] does, plus a shared-memory
    /// descriptor ring for packet payloads. This is the first
    /// configuration where hosting the hot path at user level undercuts
    /// the kernel copy path: descriptors and doorbells cross, payload
    /// bytes never touch the XDR marshaler.
    pub fn kernel_user_shmring() -> Self {
        ChannelConfig {
            shmring: true,
            ..ChannelConfig::kernel_user_batched()
        }
    }

    /// The completion-based kernel↔user configuration: everything
    /// [`ChannelConfig::kernel_user_batched`] does, but flushes *launch*
    /// the boundary crossing instead of blocking on it — the crossing's
    /// latency is charged at harvest time, net of whatever computation
    /// overlapped it.
    pub fn kernel_user_async() -> Self {
        ChannelConfig {
            transport: TransportKind::Async,
            ..ChannelConfig::kernel_user_batched()
        }
    }

    /// The async data-path configuration: [`ChannelConfig::kernel_user_async`]
    /// plus a shared-memory descriptor ring for payloads — doorbells
    /// launch, descriptors ride rings, payload bytes never touch the
    /// marshaler, and crossing latency hides behind driver computation.
    pub fn kernel_user_async_shmring() -> Self {
        ChannelConfig {
            shmring: true,
            ..ChannelConfig::kernel_user_async()
        }
    }

    /// A same-process C↔Java channel (driver library ↔ decaf driver).
    pub fn cross_language_only() -> Self {
        ChannelConfig {
            domain_crossing: false,
            ..ChannelConfig::kernel_user()
        }
    }
}

/// Counters for one channel.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ChannelStats {
    /// Completed call/return round trips (the paper's "User/Kernel
    /// Crossings" column counts these). A batched flush is one round
    /// trip no matter how many calls it carries.
    pub round_trips: u64,
    /// One-way transfers (2× round trips unless a call faults).
    pub one_way_crossings: u64,
    /// Marshaled bytes, caller → target.
    pub bytes_in: u64,
    /// Marshaled bytes, target → caller.
    pub bytes_out: u64,
    /// Handler panics caught.
    pub faults: u64,
    /// Calls parked in the transport queue instead of crossing alone.
    pub deferred_calls: u64,
    /// Deferred calls executed by flushes.
    pub batched_calls: u64,
    /// Batched flushes performed (each cost one round trip).
    pub flushes: u64,
    /// Objects transferred in full (first crossing or wide structs).
    pub full_objects: u64,
    /// Objects transferred as dirty-field deltas.
    pub delta_objects: u64,
    /// Masked fields elided by delta marshaling.
    pub delta_fields_elided: u64,
    /// Descriptors posted into data-path rings attached to this channel.
    pub ring_posts: u64,
    /// Data-path doorbells rung (each one boundary crossing carrying a
    /// batch of descriptors).
    pub doorbells: u64,
    /// Highest data-path ring occupancy observed.
    pub ring_occupancy_hwm: u64,
    /// Completion tokens issued by async calls (every async call gets
    /// one; on a non-async transport the call resolves synchronously and
    /// the token is born resolved).
    pub tokens_issued: u64,
    /// Tokens resolved by harvest (or synchronously, on a non-async
    /// transport). Conservation: `tokens_issued == tokens_harvested +
    /// tokens_cancelled` once the channel quiesces.
    pub tokens_harvested: u64,
    /// Tokens cancelled by fault recovery before their call launched.
    pub tokens_cancelled: u64,
    /// Crossing latency hidden behind computation: the portion of
    /// launched crossings that had already elapsed by harvest time.
    /// Overlap is the async transport's whole payoff — `wait = cost −
    /// overlap`, so async busy time never exceeds batched busy time.
    pub overlap_ns: u64,
}

impl ChannelStats {
    /// Average descriptors carried per doorbell crossing — the
    /// amortization factor of the shmring data path.
    pub fn descriptors_per_doorbell(&self) -> f64 {
        if self.doorbells == 0 {
            return 0.0;
        }
        self.ring_posts as f64 / self.doorbells as f64
    }

    /// Folds another channel's counters into this one — the aggregation
    /// rule a sharded facade uses to present N channels as one: every
    /// counter sums, except the occupancy high-water mark, which takes
    /// the max (per-shard rings fill independently; summing HWMs would
    /// report an occupancy no single ring ever saw).
    pub fn merge(&mut self, other: &ChannelStats) {
        self.round_trips += other.round_trips;
        self.one_way_crossings += other.one_way_crossings;
        self.bytes_in += other.bytes_in;
        self.bytes_out += other.bytes_out;
        self.faults += other.faults;
        self.deferred_calls += other.deferred_calls;
        self.batched_calls += other.batched_calls;
        self.flushes += other.flushes;
        self.full_objects += other.full_objects;
        self.delta_objects += other.delta_objects;
        self.delta_fields_elided += other.delta_fields_elided;
        self.ring_posts += other.ring_posts;
        self.doorbells += other.doorbells;
        self.ring_occupancy_hwm = self.ring_occupancy_hwm.max(other.ring_occupancy_hwm);
        self.tokens_issued += other.tokens_issued;
        self.tokens_harvested += other.tokens_harvested;
        self.tokens_cancelled += other.tokens_cancelled;
        self.overlap_ns += other.overlap_ns;
    }
}

/// A procedure registered at one end of a channel.
#[derive(Clone)]
pub struct ProcDef {
    /// Procedure name (matches the entry-point name from DriverSlicer).
    pub name: String,
    /// Struct type of each object argument, in order.
    pub arg_types: Vec<String>,
    /// The implementation.
    pub handler: ProcHandler,
}

/// Handler signature: object arguments arrive as local heap addresses,
/// scalars as XDR values; the scalar return value travels back.
pub type ProcHandler = Rc<dyn Fn(&Kernel, &XpcChannel, &[Option<CAddr>], &[XdrValue]) -> XdrValue>;

/// Sender-side delta state for one channel end: the heap generation at
/// which each local object last crossed, per direction.
#[derive(Debug, Default)]
struct DeltaMap {
    sent: HashMap<(CAddr, Direction), u64>,
}

impl DeltaMap {
    fn clear(&mut self) {
        self.sent.clear();
    }

    /// Forgets everything known about one local object.
    fn forget(&mut self, local: CAddr) {
        self.sent.retain(|(addr, _), _| *addr != local);
    }
}

impl DeltaHook for DeltaMap {
    fn last_sent(&mut self, local: CAddr, dir: Direction) -> Option<u64> {
        self.sent.get(&(local, dir)).copied()
    }
    fn mark_sent(&mut self, local: CAddr, dir: Direction, gen: u64) {
        self.sent.insert((local, dir), gen);
    }
}

struct DomainEnd {
    domain: Domain,
    /// The heap's base address: the domain's base plus any shard offset.
    /// Stored so `reset_end` rebuilds the heap in the same address range
    /// (a sharded channel's ends must stay disjoint across shards).
    heap_base: u64,
    heap: Rc<RefCell<ObjHeap>>,
    tracker: RefCell<ObjectTracker>,
    procs: RefCell<HashMap<String, ProcDef>>,
    delta: RefCell<DeltaMap>,
}

impl DomainEnd {
    fn new(domain: Domain, heap_base: u64) -> Self {
        DomainEnd {
            domain,
            heap_base,
            heap: Rc::new(RefCell::new(ObjHeap::with_base(heap_base))),
            tracker: RefCell::new(ObjectTracker::new()),
            procs: RefCell::new(HashMap::new()),
            delta: RefCell::new(DeltaMap::default()),
        }
    }
}

/// One launched flush on an async transport: the batch's tokens plus
/// the crossing latency banked at launch time, settled at harvest.
#[derive(Debug)]
struct LaunchedBatch {
    tokens: Vec<CompletionToken>,
    class: CpuClass,
    launched_at: u64,
    cost_ns: u64,
}

/// Deadline-wakeup state: a kernel timer that fires the adaptive-batching
/// flush *at* the deadline, plus the shard to attribute the flush to.
#[derive(Debug, Clone, Copy)]
struct DeadlineWakeup {
    timer: TimerId,
    shard: Option<usize>,
}

/// A two-ended XPC channel: stub layer plus a pluggable transport.
pub struct XpcChannel {
    spec: XdrSpec,
    masks: MaskSet,
    config: ChannelConfig,
    transport: Box<dyn Transport>,
    a: DomainEnd,
    b: DomainEnd,
    stats: Cell<ChannelStats>,
    /// True while a flush on an async transport is pricing its two
    /// crossings: `charge_transfer` banks the cost instead of charging.
    launching: Cell<bool>,
    /// Crossing cost accumulated by the in-progress launch.
    launch_cost: Cell<u64>,
    /// Launched-but-unharvested batches, in launch order.
    launched: RefCell<VecDeque<LaunchedBatch>>,
    /// Tokens issued and not yet harvested or cancelled.
    outstanding: RefCell<HashSet<u64>>,
    /// Token numbers for calls that resolved synchronously (degraded
    /// mode on a non-async transport, or per-call fallback): a disjoint
    /// high range so they can never collide with transport-minted ones.
    next_sync_token: Cell<u64>,
    /// Deadline-wakeup timer, once [`XpcChannel::arm_deadline_wakeups`]
    /// opted this channel in. `None` means the classic behavior: the
    /// deadline is only evaluated when the next call or poll arrives.
    wakeup: Cell<Option<DeadlineWakeup>>,
}

impl XpcChannel {
    /// Creates a channel between two domains over a shared interface spec
    /// and mask set (both produced by DriverSlicer).
    pub fn new(spec: XdrSpec, masks: MaskSet, config: ChannelConfig, a: Domain, b: Domain) -> Self {
        XpcChannel::with_heap_offset(spec, masks, config, a, b, 0)
    }

    /// Like [`XpcChannel::new`], with both ends' heaps based at their
    /// domain base plus `heap_offset`. A sharded facade gives each shard
    /// channel a distinct offset so every heap address in the system
    /// names exactly one (shard, domain, object) — what makes home-shard
    /// lookup by address exact.
    pub fn with_heap_offset(
        spec: XdrSpec,
        masks: MaskSet,
        config: ChannelConfig,
        a: Domain,
        b: Domain,
        heap_offset: u64,
    ) -> Self {
        assert_ne!(a, b, "a channel needs two distinct domains");
        XpcChannel {
            spec,
            masks,
            config,
            transport: transport::build(
                config.transport,
                config.batch_capacity,
                config.batch_deadline_ns,
            ),
            a: DomainEnd::new(a, a.heap_base() + heap_offset),
            b: DomainEnd::new(b, b.heap_base() + heap_offset),
            stats: Cell::new(ChannelStats::default()),
            launching: Cell::new(false),
            launch_cost: Cell::new(0),
            launched: RefCell::new(VecDeque::new()),
            outstanding: RefCell::new(HashSet::new()),
            next_sync_token: Cell::new(1 << 63),
            wakeup: Cell::new(None),
        }
    }

    /// The transport kind this channel crosses with.
    pub fn transport_kind(&self) -> TransportKind {
        self.transport.kind()
    }

    /// Deferred calls currently parked in the transport queue.
    pub fn pending_deferred(&self) -> usize {
        self.transport.pending()
    }

    /// Takes every parked deferred call out of the transport *without*
    /// executing it — the fault-recovery hook a sharded facade uses to
    /// requeue a dead shard's in-flight calls after resetting its user
    /// end. The calls are returned in defer order.
    pub fn take_deferred(&self) -> Vec<DeferredCall> {
        self.transport.drain()
    }

    fn end(&self, domain: Domain) -> XpcResult<&DomainEnd> {
        if self.a.domain == domain {
            Ok(&self.a)
        } else if self.b.domain == domain {
            Ok(&self.b)
        } else {
            Err(XpcError::UnknownDomain(domain.to_string()))
        }
    }

    fn peer(&self, domain: Domain) -> XpcResult<&DomainEnd> {
        if self.a.domain == domain {
            Ok(&self.b)
        } else if self.b.domain == domain {
            Ok(&self.a)
        } else {
            Err(XpcError::UnknownDomain(domain.to_string()))
        }
    }

    /// The heap of one end (driver code allocates its structures here).
    ///
    /// # Panics
    /// Panics if `domain` is not an end of this channel.
    pub fn heap(&self, domain: Domain) -> Rc<RefCell<ObjHeap>> {
        Rc::clone(&self.end(domain).expect("domain not on this channel").heap)
    }

    /// The interface spec this channel marshals against.
    pub fn spec(&self) -> &XdrSpec {
        &self.spec
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ChannelStats {
        self.stats.get()
    }

    /// Object-tracker counters for one end.
    pub fn tracker_stats(&self, domain: Domain) -> TrackerStats {
        self.end(domain)
            .map(|e| e.tracker.borrow().stats())
            .unwrap_or_default()
    }

    /// Live tracker associations at one end (test/diagnostic helper).
    pub fn tracker_len(&self, domain: Domain) -> usize {
        self.end(domain)
            .map(|e| e.tracker.borrow().len())
            .unwrap_or(0)
    }

    /// Registers a procedure at `domain`'s end.
    pub fn register_proc(&self, domain: Domain, def: ProcDef) -> XpcResult<()> {
        self.end(domain)?
            .procs
            .borrow_mut()
            .insert(def.name.clone(), def);
        Ok(())
    }

    /// Names of procedures registered at `domain`'s end, sorted.
    pub fn proc_names(&self, domain: Domain) -> Vec<String> {
        match self.end(domain) {
            Ok(e) => {
                let mut v: Vec<_> = e.procs.borrow().keys().cloned().collect();
                v.sort();
                v
            }
            Err(_) => Vec::new(),
        }
    }

    /// Releases a shared object at one end: drops its tracker association
    /// and frees it from the heap (the explicit release of §3.1.2).
    ///
    /// Delta hygiene: the peer must not delta-encode against state this
    /// end no longer holds, so the peer's delta entries for its copy of
    /// the object are forgotten too.
    pub fn release_object(&self, domain: Domain, local: CAddr) -> XpcResult<()> {
        let e = self.end(domain)?;
        let peer = self.peer(domain)?;
        let canonical = e.tracker.borrow_mut().release_local(local);
        e.heap.borrow_mut().free(local);
        e.delta.borrow_mut().forget(local);
        match canonical {
            // The object originated at the peer: its canonical address IS
            // the peer's local address.
            Some(remote) => peer.delta.borrow_mut().forget(remote),
            // The object originated here: find the peer's copy through the
            // peer's tracker (release is a rare, configuration-path event).
            None => {
                for (remote, _ty, peer_local) in peer.tracker.borrow().associations() {
                    if remote == local {
                        peer.delta.borrow_mut().forget(peer_local);
                    }
                }
            }
        }
        Ok(())
    }

    /// Allocates a schema-default structure in one end's heap.
    pub fn alloc_shared(&self, domain: Domain, type_name: &str) -> XpcResult<CAddr> {
        let e = self.end(domain)?;
        let mut heap = e.heap.borrow_mut();
        heap.alloc_default(type_name, &self.spec)
            .map_err(XpcError::Xdr)
    }

    /// Clears one end's heap and tracker — the decaf-driver restart path
    /// after a fault. Both ends' delta maps are cleared (neither side may
    /// assume the other still holds prior state), and deferred calls
    /// queued by the reset end are dropped.
    pub fn reset_end(&self, domain: Domain) -> XpcResult<()> {
        let e = self.end(domain)?;
        *e.heap.borrow_mut() = ObjHeap::with_base(e.heap_base);
        *e.tracker.borrow_mut() = ObjectTracker::new();
        e.delta.borrow_mut().clear();
        self.peer(domain)?.delta.borrow_mut().clear();
        let cancelled = self.transport.retain(&|c| c.from != domain);
        self.cancel_tokens(&cancelled);
        Ok(())
    }

    pub(crate) fn bump(&self, f: impl FnOnce(&mut ChannelStats)) {
        let mut s = self.stats.get();
        f(&mut s);
        self.stats.set(s);
    }

    /// The peer of `domain` on this channel.
    pub fn peer_domain(&self, domain: Domain) -> XpcResult<Domain> {
        self.peer(domain).map(|e| e.domain)
    }

    fn charge_transfer(&self, kernel: &Kernel, payer: Domain, bytes: usize) {
        self.bump(|s| s.one_way_crossings += 1);
        let class = payer.cpu_class();
        if self.launching.get() {
            // An async launch banks the crossing latency for harvest to
            // settle; the marshal work below is CPU time spent *now* and
            // is charged regardless.
            self.launch_cost.set(
                self.launch_cost.get()
                    + self.transport.crossing_cost_ns(self.config.domain_crossing),
            );
        } else {
            self.transport
                .charge_crossing(kernel, class, self.config.domain_crossing);
        }
        kernel.charge(class, bytes as u64 * costs::MARSHAL_BYTE_NS);
    }

    /// XDR wire size of one by-value scalar (RFC 4506: everything packs
    /// to 4-byte alignment). Counted and charged like object bytes, so a
    /// payload smuggled through an opaque scalar is never free.
    fn scalar_wire_bytes(v: &XdrValue) -> usize {
        match v {
            XdrValue::Void => 0,
            XdrValue::Hyper(_) | XdrValue::UHyper(_) | XdrValue::Double(_) => 8,
            XdrValue::Opaque(b) => 4 + b.len().next_multiple_of(4),
            XdrValue::Str(s) => 4 + s.len().next_multiple_of(4),
            XdrValue::Array(items) => 4 + items.iter().map(Self::scalar_wire_bytes).sum::<usize>(),
            XdrValue::Struct { fields, .. } => {
                fields.iter().map(|(_, f)| Self::scalar_wire_bytes(f)).sum()
            }
            XdrValue::Optional(inner) => 4 + inner.as_deref().map_or(0, Self::scalar_wire_bytes),
            _ => 4,
        }
    }

    /// Stub steps 2+3: tracker translation and delta-aware marshaling of
    /// `roots` out of `end`'s heap.
    fn marshal_from(
        &self,
        kernel: &Kernel,
        end: &DomainEnd,
        roots: &[Option<CAddr>],
        dir: Direction,
    ) -> XpcResult<Vec<u8>> {
        let heap = end.heap.borrow();
        let tracker = &end.tracker;
        let translate = |local| tracker.borrow().canonical_for(local).unwrap_or(local);
        let mut no_delta = NoDelta;
        let mut delta_map;
        let hook: &mut dyn DeltaHook = if self.config.delta {
            delta_map = end.delta.borrow_mut();
            &mut *delta_map
        } else {
            &mut no_delta
        };
        let (wire, dstats) = graph::marshal_args_delta(
            &heap,
            roots,
            &self.spec,
            &self.masks,
            dir,
            &translate,
            hook,
        )?;
        let class = end.domain.cpu_class();
        kernel.charge(class, wire.len() as u64 * costs::MARSHAL_BYTE_NS);
        if self.config.delta {
            // Generation-counter bookkeeping happens only on delta
            // channels; charging it unconditionally would tax the
            // non-delta baseline the ablation compares against.
            kernel.charge(
                class,
                (dstats.full_objects + dstats.delta_objects) * costs::DELTA_TRACK_NS,
            );
        }
        self.bump(|s| {
            s.full_objects += dstats.full_objects;
            s.delta_objects += dstats.delta_objects;
            s.delta_fields_elided += dstats.fields_elided;
        });
        Ok(wire)
    }

    /// Stub step 5 (and the caller-side half of step 6): tracker-aware
    /// unmarshaling of `wire` into `end`'s heap.
    fn unmarshal_into(
        &self,
        kernel: &Kernel,
        end: &DomainEnd,
        wire: &[u8],
        types: &[&str],
        dir: Direction,
        object_args: usize,
    ) -> XpcResult<Vec<Option<CAddr>>> {
        let locals = {
            let mut heap = end.heap.borrow_mut();
            let mut tracker = end.tracker.borrow_mut();
            graph::unmarshal_args(
                wire,
                types,
                &mut heap,
                &self.spec,
                &self.masks,
                dir,
                &mut *tracker,
            )?
        };
        let class = end.domain.cpu_class();
        kernel.charge(class, wire.len() as u64 * costs::MARSHAL_BYTE_NS);
        if self.config.cross_language && dir == Direction::In {
            // The C-side unmarshal + Java-side re-marshal detour (§4.2).
            kernel.charge(
                class,
                object_args as u64 * costs::CROSS_LANGUAGE_OBJECT_NS
                    + wire.len() as u64 * costs::MARSHAL_BYTE_NS,
            );
        }
        Ok(locals)
    }

    fn record_atomic_violation(&self, kernel: &Kernel, target: &DomainEnd, what: &str) {
        // Upcalls to user level are illegal from atomic context (§3.1.3);
        // record the violation but keep simulating.
        if target.domain.is_user() && !kernel.may_block() {
            kernel.record_violation(
                ViolationKind::UpcallInAtomic,
                format!("XPC `{what}` to {} from atomic context", target.domain),
            );
        }
    }

    fn lookup_proc(&self, target: &DomainEnd, proc: &str) -> XpcResult<ProcDef> {
        target
            .procs
            .borrow()
            .get(proc)
            .cloned()
            .ok_or_else(|| XpcError::UnknownProc {
                domain: target.domain.to_string(),
                proc: proc.to_string(),
            })
    }

    /// Performs one cross-domain procedure call from `from` to its peer.
    ///
    /// `args` are object parameters as addresses in the *caller's* heap;
    /// `scalars` travel by value. Returns the handler's scalar result.
    ///
    /// Any deferred calls parked in the transport flush first, so a
    /// synchronous call always observes the effects of earlier deferred
    /// work (program order is preserved).
    pub fn call(
        &self,
        kernel: &Kernel,
        from: Domain,
        proc: &str,
        args: &[Option<CAddr>],
        scalars: &[XdrValue],
    ) -> XpcResult<XdrValue> {
        self.flush(kernel)?;
        self.call_inner(kernel, from, proc, args, scalars)
    }

    /// The six stub steps, without the flush prologue. Also the fallback
    /// path for deferred calls whose batch failed to marshal.
    fn call_inner(
        &self,
        kernel: &Kernel,
        from: Domain,
        proc: &str,
        args: &[Option<CAddr>],
        scalars: &[XdrValue],
    ) -> XpcResult<XdrValue> {
        debug_assert!(
            !self.launching.get(),
            "synchronous call entered while a launch was pricing its crossings"
        );
        let _span = kernel.trace_span("xpc", "call");
        let caller = self.end(from)?;
        let target = self.peer(from)?;
        self.record_atomic_violation(kernel, target, proc);
        let def = self.lookup_proc(target, proc)?;

        // Steps 2+3: translate and marshal. Scalar arguments travel by
        // value too: they are encoded onto the same wire and accounted
        // the same way — a payload smuggled through an opaque scalar
        // pays exactly what it would as an object field.
        let scalar_in: usize = scalars.iter().map(Self::scalar_wire_bytes).sum();
        let wire_in = self.marshal_from(kernel, caller, args, Direction::In)?;
        self.bump(|s| s.bytes_in += (wire_in.len() + scalar_in) as u64);

        // Step 4: control transfer.
        self.charge_transfer(kernel, from, wire_in.len() + scalar_in);

        // Step 5: unmarshal at the target, tracker-aware.
        let arg_type_refs: Vec<&str> = def.arg_types.iter().map(String::as_str).collect();
        let locals = self.unmarshal_into(
            kernel,
            target,
            &wire_in,
            &arg_type_refs,
            Direction::In,
            args.len(),
        )?;

        // Dispatch, catching user-level faults.
        let handler = Rc::clone(&def.handler);
        let result = catch_unwind(AssertUnwindSafe(|| handler(kernel, self, &locals, scalars)));
        let ret = match result {
            Ok(v) => v,
            Err(payload) => {
                self.bump(|s| s.faults += 1);
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "panic".to_string());
                return Err(XpcError::DecafFault(msg));
            }
        };

        // Deferred calls the handler parked must land before it returns.
        self.flush(kernel)?;

        // Step 6: marshal out-parameters (and the scalar return) back
        // and update caller objects.
        let scalar_out = Self::scalar_wire_bytes(&ret);
        let wire_out = self.marshal_from(kernel, target, &locals, Direction::Out)?;
        self.bump(|s| s.bytes_out += (wire_out.len() + scalar_out) as u64);
        self.charge_transfer(kernel, target.domain, wire_out.len() + scalar_out);
        self.unmarshal_into(kernel, caller, &wire_out, &arg_type_refs, Direction::Out, 0)?;

        self.bump(|s| s.round_trips += 1);
        Ok(ret)
    }

    /// Parks a result-free call in the transport's deferred queue (the
    /// doorbell pattern). On a non-batching transport this degrades to a
    /// synchronous [`XpcChannel::call`] whose result is discarded, so
    /// drivers use one code path and the transport decides the policy.
    ///
    /// Deferred calls execute at the next flush — triggered by queue
    /// capacity, an explicit [`XpcChannel::flush`], or any synchronous
    /// call on the channel. Handler faults during a flush are counted in
    /// [`ChannelStats::faults`] but not propagated (there is no caller
    /// waiting for the result).
    pub fn call_deferred(
        &self,
        kernel: &Kernel,
        from: Domain,
        proc: &str,
        args: &[Option<CAddr>],
        scalars: &[XdrValue],
    ) -> XpcResult<()> {
        // Validate eagerly: at flush time the error could not be
        // attributed to this call site.
        let target = self.peer(from)?;
        self.lookup_proc(target, proc)?;
        let call = DeferredCall {
            from,
            proc: proc.to_string(),
            args: args.to_vec(),
            scalars: scalars.to_vec(),
            token: None,
        };
        match self.transport.offer(kernel, from.cpu_class(), call) {
            Ok(maybe_token) => {
                // On a completion-based transport every deferred call is
                // token-tracked, whoever enqueued it.
                if let Some(token) = maybe_token {
                    self.outstanding.borrow_mut().insert(token.0);
                    self.bump(|s| s.tokens_issued += 1);
                }
                self.bump(|s| s.deferred_calls += 1);
                if self.transport.flush_due(kernel) {
                    self.flush(kernel)?;
                }
                self.schedule_deadline_wakeup(kernel);
                Ok(())
            }
            Err(call) => self
                .call(kernel, from, &call.proc, &call.args, &call.scalars)
                .map(|_| ()),
        }
    }

    /// Issues a result-free call asynchronously, returning a
    /// [`CompletionToken`] that resolves when the call's launch crossing
    /// is harvested. On a non-async transport the call degrades to the
    /// transport's own policy (batched deferral or a synchronous call)
    /// and the token is born resolved — drivers use one code path, the
    /// transport decides how asynchronous it really is.
    pub fn call_async(
        &self,
        kernel: &Kernel,
        from: Domain,
        proc: &str,
        args: &[Option<CAddr>],
        scalars: &[XdrValue],
    ) -> XpcResult<CompletionToken> {
        let target = self.peer(from)?;
        self.lookup_proc(target, proc)?;
        let call = DeferredCall {
            from,
            proc: proc.to_string(),
            args: args.to_vec(),
            scalars: scalars.to_vec(),
            token: None,
        };
        match self.transport.offer(kernel, from.cpu_class(), call) {
            Ok(Some(token)) => {
                self.outstanding.borrow_mut().insert(token.0);
                self.bump(|s| {
                    s.deferred_calls += 1;
                    s.tokens_issued += 1;
                });
                if self.transport.flush_due(kernel) {
                    self.flush(kernel)?;
                }
                self.schedule_deadline_wakeup(kernel);
                Ok(token)
            }
            Ok(None) => {
                // Batched transport: the call is parked but completion is
                // not tracked — the token resolves with the next flush,
                // which is synchronous on this transport.
                self.bump(|s| {
                    s.deferred_calls += 1;
                    s.tokens_issued += 1;
                    s.tokens_harvested += 1;
                });
                if self.transport.flush_due(kernel) {
                    self.flush(kernel)?;
                }
                self.schedule_deadline_wakeup(kernel);
                Ok(self.mint_sync_token())
            }
            Err(call) => {
                self.call(kernel, from, &call.proc, &call.args, &call.scalars)?;
                self.bump(|s| {
                    s.tokens_issued += 1;
                    s.tokens_harvested += 1;
                });
                Ok(self.mint_sync_token())
            }
        }
    }

    /// A pre-resolved token from the disjoint synchronous range.
    fn mint_sync_token(&self) -> CompletionToken {
        let t = CompletionToken(self.next_sync_token.get());
        self.next_sync_token.set(t.0 + 1);
        t
    }

    /// Re-parks a deferred call taken out by [`XpcChannel::take_deferred`]
    /// (the fault-recovery requeue path). The call keeps its completion
    /// token if it has one — requeuing never re-issues — so conservation
    /// (`tokens_issued == tokens_harvested + tokens_cancelled`) holds
    /// across recovery. On a non-queueing transport the call executes
    /// synchronously and its token (if any) resolves immediately.
    pub fn requeue_deferred(&self, kernel: &Kernel, call: DeferredCall) -> XpcResult<()> {
        let target = self.peer(call.from)?;
        self.lookup_proc(target, &call.proc)?;
        let token = call.token;
        match self.transport.offer(kernel, call.from.cpu_class(), call) {
            Ok(_) => {
                self.bump(|s| s.deferred_calls += 1);
                self.schedule_deadline_wakeup(kernel);
                Ok(())
            }
            Err(call) => {
                self.call(kernel, call.from, &call.proc, &call.args, &call.scalars)?;
                if let Some(t) = token {
                    self.resolve_tokens(&[t]);
                }
                Ok(())
            }
        }
    }

    /// Marks tokens resolved: removes them from the outstanding set and
    /// counts them harvested.
    fn resolve_tokens(&self, tokens: &[CompletionToken]) {
        let mut outstanding = self.outstanding.borrow_mut();
        let mut resolved = 0u64;
        for t in tokens {
            if outstanding.remove(&t.0) {
                resolved += 1;
            }
        }
        drop(outstanding);
        if resolved > 0 {
            self.bump(|s| s.tokens_harvested += resolved);
        }
    }

    /// Cancels tokens whose calls were dropped before launching (fault
    /// recovery): removes them from the outstanding set and counts them
    /// cancelled, never harvested.
    pub fn cancel_tokens(&self, tokens: &[CompletionToken]) {
        let mut outstanding = self.outstanding.borrow_mut();
        let mut cancelled = 0u64;
        for t in tokens {
            if outstanding.remove(&t.0) {
                cancelled += 1;
            }
        }
        drop(outstanding);
        if cancelled > 0 {
            self.bump(|s| s.tokens_cancelled += cancelled);
        }
    }

    /// Tokens issued and not yet harvested or cancelled.
    pub fn tokens_outstanding(&self) -> usize {
        self.outstanding.borrow().len()
    }

    /// Harvests every launched batch: settles each batch's banked
    /// crossing latency against the virtual time that elapsed since its
    /// launch — elapsed time is *overlap* (the crossing was hidden
    /// behind computation or idle latency), only the uncovered remainder
    /// is charged as wait. Returns the resolved tokens.
    pub fn harvest(&self, kernel: &Kernel) -> Vec<CompletionToken> {
        let mut resolved = Vec::new();
        if self.launched.borrow().is_empty() {
            // Poll paths harvest on every probe; emit no trace events
            // (and open no span) when there is nothing to settle.
            return resolved;
        }
        let _span = kernel.trace_span("xpc", "harvest");
        loop {
            let Some(batch) = self.launched.borrow_mut().pop_front() else {
                break;
            };
            let elapsed = kernel.now_ns().saturating_sub(batch.launched_at);
            let covered = elapsed.min(batch.cost_ns);
            let uncovered = batch.cost_ns - covered;
            if uncovered > 0 {
                kernel.charge(batch.class, uncovered);
            }
            kernel.trace_instant(
                "xpc.batch",
                "harvest",
                &[
                    ("tokens", batch.tokens.len() as u64),
                    ("overlap_ns", covered),
                    ("uncovered_ns", uncovered),
                ],
            );
            self.bump(|s| s.overlap_ns += covered);
            self.resolve_tokens(&batch.tokens);
            resolved.extend(batch.tokens);
        }
        resolved
    }

    /// Resolves one token: flushes the queue if the token's call has not
    /// launched yet, then harvests. Returns every token resolved along
    /// the way (harvest settles whole batches, never single calls).
    pub fn wait_token(
        &self,
        kernel: &Kernel,
        token: CompletionToken,
    ) -> XpcResult<Vec<CompletionToken>> {
        if !self.outstanding.borrow().contains(&token.0) {
            return Ok(Vec::new());
        }
        let launched = self
            .launched
            .borrow()
            .iter()
            .any(|b| b.tokens.contains(&token));
        if !launched {
            self.flush(kernel)?;
        }
        let resolved = self.harvest(kernel);
        debug_assert!(
            !self.outstanding.borrow().contains(&token.0),
            "wait_token must resolve its token"
        );
        Ok(resolved)
    }

    /// Flushes the deferred queue only if the transport says a flush is
    /// due — at capacity, or past the adaptive-batching deadline. Poll
    /// this from timers or scheduling points so low-rate control paths
    /// do not hold posted writes longer than the coalescing window.
    pub fn flush_if_due(&self, kernel: &Kernel) -> XpcResult<bool> {
        if self.transport.flush_due(kernel) {
            self.flush(kernel)?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Opts this channel into timer-driven deadline flushes: whenever a
    /// queueing transport arms its adaptive-batching deadline, a kernel
    /// timer is scheduled so the flush fires *at* the deadline even if
    /// no further call or poll ever arrives.
    ///
    /// Without this, `flush_due` is only evaluated by the next event on
    /// the channel — under open-loop idle gaps a parked batched/async
    /// call could sit past its deadline indefinitely. Opt-in so
    /// manually paced closed-loop runs keep their exact flush points.
    pub fn arm_deadline_wakeups(self: &Rc<Self>, kernel: &Kernel) {
        self.arm_deadline_wakeups_on(kernel, None);
    }

    /// [`XpcChannel::arm_deadline_wakeups`] with the flush attributed to
    /// `shard` — what a sharded facade passes so timer-driven flushes
    /// charge the same per-shard ledger as event-driven ones.
    pub fn arm_deadline_wakeups_on(self: &Rc<Self>, kernel: &Kernel, shard: Option<usize>) {
        if self.wakeup.get().is_some() {
            return;
        }
        let cb = Rc::downgrade(self);
        let timer = kernel.timer_create(
            "xpc.deadline",
            Rc::new(move |k: &Kernel| {
                let Some(ch) = cb.upgrade() else { return };
                if ch.transport.pending() == 0 {
                    // The queue flushed through another path before the
                    // timer fired; nothing to do, nothing to re-arm.
                    return;
                }
                // Timer callbacks run in softirq context, where an
                // upcall to user level is illegal — defer the flush to
                // a work item (process context), the same pattern the
                // drivers' poll timers use.
                let work = cb.clone();
                k.schedule_work("xpc.deadline_flush", move |k| {
                    if let Some(ch) = work.upgrade() {
                        ch.deadline_flush(k);
                    }
                });
            }),
        );
        self.wakeup.set(Some(DeadlineWakeup { timer, shard }));
        // Calls may already be parked (armed late): cover them too.
        self.schedule_deadline_wakeup(kernel);
    }

    /// The work-item half of the deadline wakeup: flush if due, then
    /// re-arm from whatever is still parked. An early fire (the armed
    /// deadline went stale when an older call flushed) declines here
    /// and re-arms at the true remaining window.
    fn deadline_flush(&self, kernel: &Kernel) {
        let shard = self.wakeup.get().and_then(|w| w.shard);
        let run = || {
            // Deferred calls have no waiting caller: a flush error here
            // is contained exactly like a doorbell fault (already
            // counted in the channel's fault stats).
            let _ = self.flush_if_due(kernel);
            self.schedule_deadline_wakeup(kernel);
        };
        match shard {
            Some(s) => kernel.shard_scope(s, run),
            None => run(),
        }
    }

    /// Arms the wakeup timer for the oldest parked call's deadline, if
    /// wakeups are enabled, something is parked, and the timer is not
    /// already pending. A pending timer is never re-armed — it may be
    /// early (stale anchor), and an early fire is harmless: the work
    /// item declines and re-arms exactly.
    fn schedule_deadline_wakeup(&self, kernel: &Kernel) {
        let Some(w) = self.wakeup.get() else { return };
        if kernel.timer_pending(w.timer) {
            return;
        }
        let Some(oldest) = self.transport.oldest_deferred_at() else {
            return;
        };
        let deadline = oldest + self.config.batch_deadline_ns;
        kernel.timer_arm(w.timer, deadline.saturating_sub(kernel.now_ns()));
    }

    /// Flushes every deferred call through the boundary. Consecutive
    /// calls from the same domain cross together: one round trip, one
    /// shared seen-table, one out-parameter return.
    ///
    /// A group that fails to marshal as a batch (say, one call's object
    /// argument was freed between defer and flush) neither takes its
    /// neighbors down nor surfaces its error on an unrelated later
    /// synchronous call: the group's calls re-execute one by one, and
    /// individual failures are counted as faults — deferred calls have
    /// no caller waiting to receive an error.
    pub fn flush(&self, kernel: &Kernel) -> XpcResult<()> {
        // A flushed handler may defer again; bound the ping-pong.
        for _ in 0..64 {
            let pending_before = self.transport.pending();
            let queue = self.transport.drain();
            debug_assert!(
                pending_before > 0 || queue.is_empty(),
                "transport reported pending() == 0 but drained {} calls",
                queue.len()
            );
            if queue.is_empty() {
                return Ok(());
            }
            let mut i = 0;
            while i < queue.len() {
                let from = queue[i].from;
                let end = queue[i..]
                    .iter()
                    .position(|c| c.from != from)
                    .map_or(queue.len(), |p| i + p);
                if self.flush_group(kernel, &queue[i..end]).is_err() {
                    // A failed group launch banks nothing: clear the
                    // launch bracket and any partially accumulated cost.
                    self.launching.set(false);
                    self.launch_cost.set(0);
                    for call in &queue[i..end] {
                        let one = self.call_inner(
                            kernel,
                            call.from,
                            &call.proc,
                            &call.args,
                            &call.scalars,
                        );
                        match one {
                            Ok(_) => {}
                            // A handler panic already counted itself.
                            Err(XpcError::DecafFault(_)) => {}
                            Err(_) => self.bump(|s| s.faults += 1),
                        }
                        // The per-call fallback is synchronous: the
                        // call's token (fault or not, the call is done)
                        // resolves here.
                        if let Some(t) = call.token {
                            self.resolve_tokens(&[t]);
                        }
                    }
                }
                i = end;
            }
        }
        // Handlers kept re-deferring past the bound: surface the broken
        // ordering guarantee instead of silently leaving calls parked.
        Err(XpcError::FlushDiverged(self.transport.pending()))
    }

    /// Executes one same-direction batch of deferred calls as a single
    /// crossing — *launched* rather than waited on, on an async
    /// transport: the two crossing charges are banked against the
    /// batch's tokens and settled at harvest, while the data effects
    /// (unmarshal, dispatch, out-parameter return) land right here.
    fn flush_group(&self, kernel: &Kernel, group: &[DeferredCall]) -> XpcResult<()> {
        let _span = kernel.trace_span("xpc", "flush");
        let launch = self.transport.kind() == TransportKind::Async;
        let from = group[0].from;
        let caller = self.end(from)?;
        let target = self.peer(from)?;
        self.record_atomic_violation(kernel, target, "batched flush");

        let defs: Vec<ProcDef> = group
            .iter()
            .map(|c| self.lookup_proc(target, &c.proc))
            .collect::<XpcResult<_>>()?;

        // One wire message for the whole batch: roots share a seen-table,
        // so an object repeated across calls crosses once.
        let all_roots: Vec<Option<CAddr>> = group.iter().flat_map(|c| c.args.clone()).collect();
        let all_types: Vec<&str> = defs
            .iter()
            .flat_map(|d| d.arg_types.iter().map(String::as_str))
            .collect();
        let scalar_in: usize = group
            .iter()
            .flat_map(|c| c.scalars.iter())
            .map(Self::scalar_wire_bytes)
            .sum();
        let wire_in = self.marshal_from(kernel, caller, &all_roots, Direction::In)?;
        self.bump(|s| s.bytes_in += (wire_in.len() + scalar_in) as u64);
        if launch {
            self.launching.set(true);
        }
        self.charge_transfer(kernel, from, wire_in.len() + scalar_in);
        // Nested synchronous calls made by the handlers below must price
        // their own crossings normally — the bracket covers only this
        // batch's two transfers.
        self.launching.set(false);

        let locals = self.unmarshal_into(
            kernel,
            target,
            &wire_in,
            &all_types,
            Direction::In,
            all_roots.len(),
        )?;

        // Dispatch each call in queue order; results are discarded and
        // faults contained (deferred calls have no waiting caller).
        let mut offset = 0;
        for (def, call) in defs.iter().zip(group) {
            let arity = def.arg_types.len();
            let call_locals = &locals[offset..offset + arity];
            offset += arity;
            let handler = Rc::clone(&def.handler);
            let result = catch_unwind(AssertUnwindSafe(|| {
                handler(kernel, self, call_locals, &call.scalars)
            }));
            if result.is_err() {
                self.bump(|s| s.faults += 1);
            }
        }

        // One return crossing updates every caller-side object.
        let wire_out = self.marshal_from(kernel, target, &locals, Direction::Out)?;
        self.bump(|s| s.bytes_out += wire_out.len() as u64);
        if launch {
            self.launching.set(true);
        }
        self.charge_transfer(kernel, target.domain, wire_out.len());
        self.launching.set(false);
        self.unmarshal_into(kernel, caller, &wire_out, &all_types, Direction::Out, 0)?;

        if launch {
            // Bank the batch's crossing latency for harvest to settle:
            // elapsed virtual time from here on covers it as overlap.
            let cost_ns = self.launch_cost.take();
            let tokens: Vec<CompletionToken> = group.iter().filter_map(|c| c.token).collect();
            kernel.trace_instant(
                "xpc.batch",
                "launch",
                &[
                    ("tokens", tokens.len() as u64),
                    ("first_token", tokens.first().map_or(0, |t| t.0)),
                    ("cost_ns", cost_ns),
                ],
            );
            self.launched.borrow_mut().push_back(LaunchedBatch {
                tokens,
                class: from.cpu_class(),
                launched_at: kernel.now_ns(),
                cost_ns,
            });
        }

        self.bump(|s| {
            s.round_trips += 1;
            s.flushes += 1;
            s.batched_calls += group.len() as u64;
        });
        Ok(())
    }
}

/// An owned shared object that releases itself when dropped.
///
/// The paper manages shared objects manually but proposes custom
/// finalizers so "the Java garbage collector frees the object" and the
/// associated kernel memory with it (§5.1, *Potential Benefit: Garbage
/// collection*). Rust's `Drop` is that finalizer: when the guard goes out
/// of scope the tracker association is removed and the heap object freed,
/// which "can simplify exception-handling code and prevent resource leaks
/// on error paths, a common driver problem".
pub struct SharedObject {
    channel: Rc<XpcChannel>,
    domain: Domain,
    addr: CAddr,
}

impl SharedObject {
    /// Allocates a schema-default structure owned by this guard.
    pub fn new(
        channel: Rc<XpcChannel>,
        domain: Domain,
        type_name: &str,
    ) -> XpcResult<SharedObject> {
        let addr = channel.alloc_shared(domain, type_name)?;
        Ok(SharedObject {
            channel,
            domain,
            addr,
        })
    }

    /// The heap address of the object (pass as an XPC argument).
    pub fn addr(&self) -> CAddr {
        self.addr
    }

    /// The domain owning the object.
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// Releases ownership without freeing (hand the object to the driver
    /// for its full lifetime).
    pub fn into_raw(self) -> CAddr {
        let addr = self.addr;
        std::mem::forget(self);
        addr
    }
}

impl Drop for SharedObject {
    fn drop(&mut self) {
        let _ = self.channel.release_object(self.domain, self.addr);
    }
}

impl std::fmt::Debug for SharedObject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedObject")
            .field("domain", &self.domain)
            .field("addr", &format_args!("{:#x}", self.addr))
            .finish()
    }
}

impl std::fmt::Debug for XpcChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("XpcChannel")
            .field("a", &self.a.domain)
            .field("b", &self.b.domain)
            .field("stats", &self.stats.get())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decaf_xdr::graph::FieldVal;
    use decaf_xdr::mask::{Access, FieldMask};

    fn spec() -> XdrSpec {
        XdrSpec::parse(
            "struct adapter { int msg_enable; int link_up; struct ring *tx; };\n\
             struct ring { int count; };",
        )
        .unwrap()
    }

    fn channel() -> XpcChannel {
        XpcChannel::new(
            spec(),
            MaskSet::full(),
            ChannelConfig::kernel_user(),
            Domain::Nucleus,
            Domain::Decaf,
        )
    }

    fn alloc_adapter(ch: &XpcChannel) -> CAddr {
        let heap = ch.heap(Domain::Nucleus);
        let mut h = heap.borrow_mut();
        let ring = h.alloc(
            "ring",
            vec![("count".into(), FieldVal::Scalar(XdrValue::Int(256)))],
        );
        h.alloc(
            "adapter",
            vec![
                ("msg_enable".into(), FieldVal::Scalar(XdrValue::Int(0))),
                ("link_up".into(), FieldVal::Scalar(XdrValue::Int(0))),
                ("tx".into(), FieldVal::Ptr(Some(ring))),
            ],
        )
    }

    #[test]
    fn upcall_executes_handler_and_returns_scalar() {
        let k = Kernel::new();
        let ch = channel();
        ch.register_proc(
            Domain::Decaf,
            ProcDef {
                name: "e1000_probe".into(),
                arg_types: vec!["adapter".into()],
                handler: Rc::new(|_k, ch, args, _scalars| {
                    let heap = ch.heap(Domain::Decaf);
                    let h = heap.borrow();
                    let a = args[0].unwrap();
                    // The decaf driver sees the marshaled ring through the
                    // adapter pointer.
                    let ring = h.ptr(a, "tx").unwrap().unwrap();
                    h.scalar(ring, "count").unwrap().clone()
                }),
            },
        )
        .unwrap();
        let adapter = alloc_adapter(&ch);
        let ret = ch
            .call(&k, Domain::Nucleus, "e1000_probe", &[Some(adapter)], &[])
            .unwrap();
        assert_eq!(ret, XdrValue::Int(256));
        let s = ch.stats();
        assert_eq!(s.round_trips, 1);
        assert_eq!(s.one_way_crossings, 2);
        assert!(s.bytes_in > 0);
    }

    #[test]
    fn out_parameters_update_caller_objects_in_place() {
        let k = Kernel::new();
        let ch = channel();
        ch.register_proc(
            Domain::Decaf,
            ProcDef {
                name: "set_link".into(),
                arg_types: vec!["adapter".into()],
                handler: Rc::new(|_k, ch, args, _| {
                    let heap = ch.heap(Domain::Decaf);
                    let mut h = heap.borrow_mut();
                    h.set_scalar(args[0].unwrap(), "link_up", XdrValue::Int(1))
                        .unwrap();
                    XdrValue::Int(0)
                }),
            },
        )
        .unwrap();
        let adapter = alloc_adapter(&ch);
        ch.call(&k, Domain::Nucleus, "set_link", &[Some(adapter)], &[])
            .unwrap();
        let heap = ch.heap(Domain::Nucleus);
        let h = heap.borrow();
        assert_eq!(h.scalar(adapter, "link_up").unwrap(), &XdrValue::Int(1));
    }

    #[test]
    fn repeated_calls_reuse_target_objects() {
        let k = Kernel::new();
        let ch = channel();
        ch.register_proc(
            Domain::Decaf,
            ProcDef {
                name: "touch".into(),
                arg_types: vec!["adapter".into()],
                handler: Rc::new(|_, _, _, _| XdrValue::Int(0)),
            },
        )
        .unwrap();
        let adapter = alloc_adapter(&ch);
        for _ in 0..3 {
            ch.call(&k, Domain::Nucleus, "touch", &[Some(adapter)], &[])
                .unwrap();
        }
        // Adapter + embedded ring: exactly two objects at the decaf end,
        // no matter how many calls were made.
        assert_eq!(ch.heap(Domain::Decaf).borrow().len(), 2);
        let ts = ch.tracker_stats(Domain::Decaf);
        assert_eq!(ts.associations, 2);
        assert!(ts.hits >= 4, "subsequent calls hit the tracker");
    }

    #[test]
    fn nested_downcall_from_handler_works() {
        let k = Kernel::new();
        let ch = Rc::new(channel());
        ch.register_proc(
            Domain::Nucleus,
            ProcDef {
                name: "pci_read_config".into(),
                arg_types: vec![],
                handler: Rc::new(|_, _, _, scalars| {
                    XdrValue::Int(scalars[0].as_int().unwrap() + 0x100)
                }),
            },
        )
        .unwrap();
        ch.register_proc(
            Domain::Decaf,
            ProcDef {
                name: "probe".into(),
                arg_types: vec![],
                handler: Rc::new(|k, ch, _, _| {
                    // The decaf driver calls back into the kernel.
                    ch.call(
                        k,
                        Domain::Decaf,
                        "pci_read_config",
                        &[],
                        &[XdrValue::Int(4)],
                    )
                    .unwrap()
                }),
            },
        )
        .unwrap();
        let ret = ch.call(&k, Domain::Nucleus, "probe", &[], &[]).unwrap();
        assert_eq!(ret, XdrValue::Int(0x104));
        assert_eq!(ch.stats().round_trips, 2);
    }

    #[test]
    fn unknown_proc_reported() {
        let k = Kernel::new();
        let ch = channel();
        let err = ch.call(&k, Domain::Nucleus, "nope", &[], &[]).unwrap_err();
        assert!(matches!(err, XpcError::UnknownProc { .. }));
    }

    #[test]
    fn decaf_fault_is_contained() {
        let k = Kernel::new();
        let ch = channel();
        ch.register_proc(
            Domain::Decaf,
            ProcDef {
                name: "crash".into(),
                arg_types: vec![],
                handler: Rc::new(|_, _, _, _| panic!("null deref in decaf driver")),
            },
        )
        .unwrap();
        let err = ch.call(&k, Domain::Nucleus, "crash", &[], &[]).unwrap_err();
        match err {
            XpcError::DecafFault(msg) => assert!(msg.contains("null deref")),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(ch.stats().faults, 1);
        // The channel still works after resetting the faulted end.
        ch.reset_end(Domain::Decaf).unwrap();
        assert_eq!(ch.heap(Domain::Decaf).borrow().len(), 0);
    }

    #[test]
    fn upcall_from_atomic_context_flagged() {
        let k = Kernel::new();
        let ch = channel();
        ch.register_proc(
            Domain::Decaf,
            ProcDef {
                name: "bad".into(),
                arg_types: vec![],
                handler: Rc::new(|_, _, _, _| XdrValue::Void),
            },
        )
        .unwrap();
        k.enter_atomic();
        ch.call(&k, Domain::Nucleus, "bad", &[], &[]).unwrap();
        k.leave_atomic();
        assert!(k
            .violations()
            .iter()
            .any(|v| v.kind == ViolationKind::UpcallInAtomic));
    }

    #[test]
    fn field_masks_reduce_traffic() {
        let k = Kernel::new();
        let mut masks = MaskSet::selective();
        let mut m = FieldMask::new();
        m.record("msg_enable", Access::Read);
        masks.insert("adapter", m);
        let ch = XpcChannel::new(
            spec(),
            masks,
            ChannelConfig::kernel_user(),
            Domain::Nucleus,
            Domain::Decaf,
        );
        ch.register_proc(
            Domain::Decaf,
            ProcDef {
                name: "peek".into(),
                arg_types: vec!["adapter".into()],
                handler: Rc::new(|_, _, _, _| XdrValue::Int(0)),
            },
        )
        .unwrap();
        let adapter = alloc_adapter(&ch);
        ch.call(&k, Domain::Nucleus, "peek", &[Some(adapter)], &[])
            .unwrap();
        let s = ch.stats();
        // Only one int + the object header cross; the ring never does.
        assert!(
            s.bytes_in < 32,
            "selective masks keep traffic tiny: {}",
            s.bytes_in
        );
        assert_eq!(ch.heap(Domain::Decaf).borrow().len(), 1);
    }

    #[test]
    fn user_and_kernel_time_both_charged() {
        let k = Kernel::new();
        let ch = channel();
        ch.register_proc(
            Domain::Decaf,
            ProcDef {
                name: "noop".into(),
                arg_types: vec!["adapter".into()],
                handler: Rc::new(|_, _, _, _| XdrValue::Void),
            },
        )
        .unwrap();
        let adapter = alloc_adapter(&ch);
        let before = k.snapshot();
        ch.call(&k, Domain::Nucleus, "noop", &[Some(adapter)], &[])
            .unwrap();
        let after = k.snapshot();
        assert!(after.kernel_busy_ns > before.kernel_busy_ns);
        assert!(after.user_busy_ns > before.user_busy_ns);
    }

    #[test]
    fn shared_object_guard_frees_on_drop() {
        // The finalizer pattern of paper §5.1: dropping the guard releases
        // the object even on early-return error paths.
        let k = Kernel::new();
        let ch = Rc::new(channel());
        ch.register_proc(
            Domain::Decaf,
            ProcDef {
                name: "touch".into(),
                arg_types: vec!["adapter".into()],
                handler: Rc::new(|_, _, _, _| XdrValue::Void),
            },
        )
        .unwrap();
        let heap_len_before = ch.heap(Domain::Nucleus).borrow().len();
        {
            let obj = SharedObject::new(Rc::clone(&ch), Domain::Nucleus, "adapter").unwrap();
            ch.call(&k, Domain::Nucleus, "touch", &[Some(obj.addr())], &[])
                .unwrap();
            assert_eq!(ch.heap(Domain::Nucleus).borrow().len(), heap_len_before + 1);
        }
        // Guard dropped: nucleus copy freed, association released.
        assert_eq!(ch.heap(Domain::Nucleus).borrow().len(), heap_len_before);
    }

    fn batched_channel() -> XpcChannel {
        XpcChannel::new(
            spec(),
            MaskSet::full(),
            ChannelConfig::kernel_user_batched(),
            Domain::Nucleus,
            Domain::Decaf,
        )
    }

    fn register_noop(ch: &XpcChannel, name: &str) {
        ch.register_proc(
            Domain::Decaf,
            ProcDef {
                name: name.into(),
                arg_types: vec!["adapter".into()],
                handler: Rc::new(|_, _, _, _| XdrValue::Void),
            },
        )
        .unwrap();
    }

    #[test]
    fn deferred_on_inproc_degrades_to_sync() {
        let k = Kernel::new();
        let ch = channel();
        register_noop(&ch, "touch");
        let adapter = alloc_adapter(&ch);
        for _ in 0..3 {
            ch.call_deferred(&k, Domain::Nucleus, "touch", &[Some(adapter)], &[])
                .unwrap();
        }
        let s = ch.stats();
        assert_eq!(s.round_trips, 3, "no batching on InProc");
        assert_eq!(s.deferred_calls, 0);
        assert_eq!(ch.pending_deferred(), 0);
    }

    #[test]
    fn batched_flush_crosses_once_for_many_calls() {
        let k = Kernel::new();
        let ch = batched_channel();
        register_noop(&ch, "touch");
        let adapter = alloc_adapter(&ch);
        for _ in 0..5 {
            ch.call_deferred(&k, Domain::Nucleus, "touch", &[Some(adapter)], &[])
                .unwrap();
        }
        assert_eq!(ch.pending_deferred(), 5);
        assert_eq!(ch.stats().round_trips, 0, "nothing crossed yet");
        ch.flush(&k).unwrap();
        let s = ch.stats();
        assert_eq!(s.round_trips, 1, "five calls, one crossing");
        assert_eq!(s.one_way_crossings, 2);
        assert_eq!(s.flushes, 1);
        assert_eq!(s.batched_calls, 5);
        assert_eq!(s.deferred_calls, 5);
        // Shared seen-table: the adapter graph crossed once, the four
        // repeats are back-references.
        assert_eq!(ch.heap(Domain::Decaf).borrow().len(), 2);
    }

    #[test]
    fn sync_call_flushes_pending_deferred_first() {
        let k = Kernel::new();
        let ch = batched_channel();
        let order = Rc::new(RefCell::new(Vec::new()));
        for name in ["first", "second"] {
            let log = Rc::clone(&order);
            ch.register_proc(
                Domain::Decaf,
                ProcDef {
                    name: name.into(),
                    arg_types: vec![],
                    handler: Rc::new(move |_, _, _, _| {
                        log.borrow_mut().push(name);
                        XdrValue::Void
                    }),
                },
            )
            .unwrap();
        }
        ch.call_deferred(&k, Domain::Nucleus, "first", &[], &[])
            .unwrap();
        ch.call(&k, Domain::Nucleus, "second", &[], &[]).unwrap();
        assert_eq!(*order.borrow(), vec!["first", "second"]);
    }

    #[test]
    fn batched_queue_flushes_at_capacity() {
        let k = Kernel::new();
        let config = ChannelConfig {
            batch_capacity: 5,
            ..ChannelConfig::kernel_user_batched()
        };
        let ch = XpcChannel::new(
            spec(),
            MaskSet::full(),
            config,
            Domain::Nucleus,
            Domain::Decaf,
        );
        register_noop(&ch, "touch");
        let adapter = alloc_adapter(&ch);
        for _ in 0..config.batch_capacity {
            ch.call_deferred(&k, Domain::Nucleus, "touch", &[Some(adapter)], &[])
                .unwrap();
        }
        assert_eq!(ch.pending_deferred(), 0, "capacity reached, auto-flushed");
        assert_eq!(ch.stats().flushes, 1);
    }

    #[test]
    fn delta_marshals_only_dirty_fields_on_repeat() {
        let k = Kernel::new();
        let ch = batched_channel();
        register_noop(&ch, "touch");
        let adapter = alloc_adapter(&ch);

        ch.call(&k, Domain::Nucleus, "touch", &[Some(adapter)], &[])
            .unwrap();
        let first = ch.stats();
        assert!(first.full_objects >= 2, "first transfer is full");

        // Dirty one scalar; the repeat transfer should be far smaller.
        ch.heap(Domain::Nucleus)
            .borrow_mut()
            .set_scalar(adapter, "msg_enable", XdrValue::Int(7))
            .unwrap();
        ch.call(&k, Domain::Nucleus, "touch", &[Some(adapter)], &[])
            .unwrap();
        let second = ch.stats();
        let first_in = first.bytes_in;
        let second_in = second.bytes_in - first.bytes_in;
        assert!(
            second_in < first_in,
            "delta transfer ({second_in} B) must undercut full ({first_in} B)"
        );
        assert!(second.delta_objects >= 2, "repeat transfers are deltas");
        assert!(second.delta_fields_elided > 0);
        // The dirty field still arrived.
        let heap = ch.heap(Domain::Decaf);
        let h = heap.borrow();
        let decaf_adapter = h
            .iter()
            .find(|(_, o)| o.type_name == "adapter")
            .map(|(a, _)| a)
            .unwrap();
        assert_eq!(
            h.scalar(decaf_adapter, "msg_enable").unwrap(),
            &XdrValue::Int(7)
        );
    }

    #[test]
    fn clean_repeat_elides_everything_but_headers() {
        let k = Kernel::new();
        let ch = batched_channel();
        register_noop(&ch, "touch");
        let adapter = alloc_adapter(&ch);
        ch.call(&k, Domain::Nucleus, "touch", &[Some(adapter)], &[])
            .unwrap();
        let after_first = ch.stats().bytes_in;
        ch.call(&k, Domain::Nucleus, "touch", &[Some(adapter)], &[])
            .unwrap();
        let second = ch.stats().bytes_in - after_first;
        // The clean subgraph is elided wholesale: only the adapter header
        // crosses (disc 4 + addr 8 + mode 4 + empty bitmap 4 = 20 bytes).
        assert_eq!(second, 20, "untouched graph costs only the root header");
    }

    #[test]
    fn deferred_fault_contained_and_counted() {
        let k = Kernel::new();
        let ch = batched_channel();
        ch.register_proc(
            Domain::Decaf,
            ProcDef {
                name: "boom".into(),
                arg_types: vec![],
                handler: Rc::new(|_, _, _, _| panic!("deferred crash")),
            },
        )
        .unwrap();
        register_noop(&ch, "touch");
        let adapter = alloc_adapter(&ch);
        ch.call_deferred(&k, Domain::Nucleus, "boom", &[], &[])
            .unwrap();
        // The flush survives the fault and later traffic still works.
        ch.flush(&k).unwrap();
        assert_eq!(ch.stats().faults, 1);
        ch.call(&k, Domain::Nucleus, "touch", &[Some(adapter)], &[])
            .unwrap();
    }

    #[test]
    fn failed_batch_falls_back_to_per_call_execution() {
        let k = Kernel::new();
        let ch = batched_channel();
        register_noop(&ch, "touch");
        let ran = Rc::new(Cell::new(0u32));
        let r = Rc::clone(&ran);
        ch.register_proc(
            Domain::Decaf,
            ProcDef {
                name: "count".into(),
                arg_types: vec![],
                handler: Rc::new(move |_, _, _, _| {
                    r.set(r.get() + 1);
                    XdrValue::Void
                }),
            },
        )
        .unwrap();
        let adapter = alloc_adapter(&ch);
        ch.call_deferred(&k, Domain::Nucleus, "touch", &[Some(adapter)], &[])
            .unwrap();
        ch.call_deferred(&k, Domain::Nucleus, "count", &[], &[])
            .unwrap();
        // Yank the first call's argument out from under the batch: the
        // group marshal hits DanglingAddr, but the second call must
        // still execute via the per-call fallback.
        ch.heap(Domain::Nucleus).borrow_mut().free(adapter);
        ch.flush(&k).unwrap();
        assert_eq!(ran.get(), 1, "independent deferred call still ran");
        assert_eq!(ch.stats().faults, 1, "the dangling call counted as a fault");
        assert_eq!(ch.pending_deferred(), 0);
    }

    #[test]
    fn deferred_unknown_proc_rejected_at_enqueue() {
        let k = Kernel::new();
        let ch = batched_channel();
        let err = ch
            .call_deferred(&k, Domain::Nucleus, "nope", &[], &[])
            .unwrap_err();
        assert!(matches!(err, XpcError::UnknownProc { .. }));
        assert_eq!(ch.pending_deferred(), 0);
    }

    #[test]
    fn reset_end_reanchors_flush_deadline_to_surviving_calls() {
        // Regression for the flush_if_due off-by-one: a fault-recovery
        // reset drops the dead domain's deferred calls; the survivors'
        // deadline must then be measured from their own defer times, not
        // from the dropped (older) call the shared anchor used to track.
        const WINDOW: u64 = 50_000;
        let k = Kernel::new();
        let config = ChannelConfig {
            batch_deadline_ns: WINDOW,
            ..ChannelConfig::kernel_user_batched()
        };
        let ch = XpcChannel::new(
            spec(),
            MaskSet::full(),
            config,
            Domain::Nucleus,
            Domain::Decaf,
        );
        register_noop(&ch, "touch");
        ch.register_proc(
            Domain::Nucleus,
            ProcDef {
                name: "writel".into(),
                arg_types: vec![],
                handler: Rc::new(|_, _, _, _| XdrValue::Void),
            },
        )
        .unwrap();
        // t=0: the decaf driver posts a register write (oldest call).
        ch.call_deferred(&k, Domain::Decaf, "writel", &[], &[])
            .unwrap();
        k.run_for(WINDOW / 2);
        // t=W/2: the nucleus defers an upcall.
        ch.call_deferred(&k, Domain::Nucleus, "touch", &[], &[])
            .unwrap();
        // The decaf end faults; its queued calls are dropped.
        ch.reset_end(Domain::Decaf).unwrap();
        assert_eq!(ch.pending_deferred(), 1, "nucleus call survives the reset");
        // t=W+1: past the dropped call's window, within the survivor's.
        k.run_for(WINDOW / 2 + 1);
        assert!(
            !ch.flush_if_due(&k).unwrap(),
            "survivor must wait out its own coalescing window"
        );
        // t=3W/2: the survivor's own window has now expired.
        k.run_for(WINDOW / 2);
        assert!(ch.flush_if_due(&k).unwrap());
        assert_eq!(ch.pending_deferred(), 0);
    }

    #[test]
    fn reset_end_clears_delta_state() {
        let k = Kernel::new();
        let ch = batched_channel();
        register_noop(&ch, "touch");
        let adapter = alloc_adapter(&ch);
        ch.call(&k, Domain::Nucleus, "touch", &[Some(adapter)], &[])
            .unwrap();
        // Fault recovery: the decaf end loses its heap. The next transfer
        // must re-send in full, not delta against vanished state.
        ch.reset_end(Domain::Decaf).unwrap();
        ch.call(&k, Domain::Nucleus, "touch", &[Some(adapter)], &[])
            .unwrap();
        assert_eq!(ch.heap(Domain::Decaf).borrow().len(), 2);
        let s = ch.stats();
        assert!(s.full_objects >= 4, "both transfers were full: {s:?}");
    }

    #[test]
    fn release_object_clears_peer_delta_state() {
        let k = Kernel::new();
        let ch = batched_channel();
        register_noop(&ch, "touch");
        let adapter = alloc_adapter(&ch);
        ch.call(&k, Domain::Nucleus, "touch", &[Some(adapter)], &[])
            .unwrap();
        // Release the decaf-side copy of the adapter.
        let heap = ch.heap(Domain::Decaf);
        let decaf_adapter = heap
            .borrow()
            .iter()
            .find(|(_, o)| o.type_name == "adapter")
            .map(|(a, _)| a)
            .unwrap();
        ch.release_object(Domain::Decaf, decaf_adapter).unwrap();
        // The nucleus must not delta-encode the adapter against state the
        // decaf end just dropped.
        ch.call(&k, Domain::Nucleus, "touch", &[Some(adapter)], &[])
            .unwrap();
        assert_eq!(ch.heap(Domain::Decaf).borrow().len(), 2);
    }

    #[test]
    fn shared_object_into_raw_keeps_it_alive() {
        let ch = Rc::new(channel());
        let obj = SharedObject::new(Rc::clone(&ch), Domain::Nucleus, "ring").unwrap();
        let addr = obj.into_raw();
        assert!(ch.heap(Domain::Nucleus).borrow().contains(addr));
    }

    #[test]
    fn release_object_forgets_association() {
        let k = Kernel::new();
        let ch = channel();
        ch.register_proc(
            Domain::Decaf,
            ProcDef {
                name: "touch".into(),
                arg_types: vec!["adapter".into()],
                handler: Rc::new(|_, _, _, _| XdrValue::Void),
            },
        )
        .unwrap();
        let adapter = alloc_adapter(&ch);
        ch.call(&k, Domain::Nucleus, "touch", &[Some(adapter)], &[])
            .unwrap();
        let decaf_heap_len = ch.heap(Domain::Decaf).borrow().len();
        assert_eq!(decaf_heap_len, 2);
        // Release the decaf-side adapter object explicitly.
        let assoc: Vec<_> = {
            let heap = ch.heap(Domain::Decaf);
            let h = heap.borrow();
            h.iter().map(|(a, o)| (a, o.type_name.clone())).collect()
        };
        let adapter_local = assoc
            .iter()
            .find(|(_, t)| t == "adapter")
            .map(|(a, _)| *a)
            .unwrap();
        ch.release_object(Domain::Decaf, adapter_local).unwrap();
        assert_eq!(ch.heap(Domain::Decaf).borrow().len(), 1);
        // The next call re-allocates it fresh.
        ch.call(&k, Domain::Nucleus, "touch", &[Some(adapter)], &[])
            .unwrap();
        assert_eq!(ch.heap(Domain::Decaf).borrow().len(), 2);
    }

    fn async_channel() -> XpcChannel {
        XpcChannel::new(
            spec(),
            MaskSet::full(),
            ChannelConfig::kernel_user_async(),
            Domain::Nucleus,
            Domain::Decaf,
        )
    }

    #[test]
    fn async_flush_launches_and_harvest_settles_overlap() {
        let k = Kernel::new();
        let ch = async_channel();
        register_noop(&ch, "touch");
        let adapter = alloc_adapter(&ch);
        let t = ch
            .call_async(&k, Domain::Nucleus, "touch", &[Some(adapter)], &[])
            .unwrap();
        assert_eq!(ch.tokens_outstanding(), 1);
        ch.flush(&k).unwrap();
        // The launch charged marshal work but banked the two crossing
        // latencies (2 × (DOMAIN_CROSSING + BATCH_DOORBELL)).
        let banked = 2 * (costs::DOMAIN_CROSSING_NS + costs::BATCH_DOORBELL_NS);
        assert_eq!(ch.stats().flushes, 1, "flush launched the batch");
        // Idle latency fully covers the crossings: harvest charges zero.
        k.run_for(banked);
        let busy_mid = k.snapshot().kernel_busy_ns;
        let resolved = ch.harvest(&k);
        assert_eq!(resolved, vec![t]);
        assert_eq!(
            k.snapshot().kernel_busy_ns,
            busy_mid,
            "a fully covered crossing charges nothing at harvest"
        );
        let s = ch.stats();
        assert_eq!(s.overlap_ns, banked, "whole crossing was overlap");
        assert_eq!(s.tokens_issued, 1);
        assert_eq!(s.tokens_harvested, 1);
        assert_eq!(ch.tokens_outstanding(), 0);
    }

    #[test]
    fn async_immediate_harvest_charges_full_cost() {
        let k = Kernel::new();
        let ch = async_channel();
        register_noop(&ch, "touch");
        let adapter = alloc_adapter(&ch);
        ch.call_async(&k, Domain::Nucleus, "touch", &[Some(adapter)], &[])
            .unwrap();
        ch.flush(&k).unwrap();
        // No time passes between launch and harvest: zero overlap, the
        // full crossing latency lands as wait — exactly what Batched
        // would have charged at flush time.
        let busy_before = k.snapshot().kernel_busy_ns;
        ch.harvest(&k);
        let charged = k.snapshot().kernel_busy_ns - busy_before;
        assert_eq!(
            charged,
            2 * (costs::DOMAIN_CROSSING_NS + costs::BATCH_DOORBELL_NS)
        );
        assert_eq!(ch.stats().overlap_ns, 0);
    }

    #[test]
    fn wait_token_flushes_unlaunched_call_and_resolves() {
        let k = Kernel::new();
        let ch = async_channel();
        register_noop(&ch, "touch");
        let adapter = alloc_adapter(&ch);
        let t = ch
            .call_async(&k, Domain::Nucleus, "touch", &[Some(adapter)], &[])
            .unwrap();
        assert_eq!(ch.pending_deferred(), 1, "still parked");
        let resolved = ch.wait_token(&k, t).unwrap();
        assert!(resolved.contains(&t));
        assert_eq!(ch.tokens_outstanding(), 0);
        // Waiting again on a resolved token is a no-op.
        assert!(ch.wait_token(&k, t).unwrap().is_empty());
    }

    #[test]
    fn async_degrades_on_non_async_transports_with_resolved_tokens() {
        let k = Kernel::new();
        for config in [
            ChannelConfig::kernel_user(),
            ChannelConfig::kernel_user_batched(),
        ] {
            let ch = XpcChannel::new(
                spec(),
                MaskSet::full(),
                config,
                Domain::Nucleus,
                Domain::Decaf,
            );
            register_noop(&ch, "touch");
            let adapter = alloc_adapter(&ch);
            let t = ch
                .call_async(&k, Domain::Nucleus, "touch", &[Some(adapter)], &[])
                .unwrap();
            assert_eq!(ch.tokens_outstanding(), 0, "token born resolved");
            assert!(ch.wait_token(&k, t).unwrap().is_empty());
            ch.flush(&k).unwrap();
            let s = ch.stats();
            assert_eq!(s.tokens_issued, 1);
            assert_eq!(s.tokens_harvested, 1);
            assert_eq!(s.overlap_ns, 0, "nothing launches on a sync transport");
        }
    }

    #[test]
    fn reset_end_cancels_unlaunched_tokens() {
        let k = Kernel::new();
        let ch = async_channel();
        ch.register_proc(
            Domain::Nucleus,
            ProcDef {
                name: "writel".into(),
                arg_types: vec![],
                handler: Rc::new(|_, _, _, _| XdrValue::Void),
            },
        )
        .unwrap();
        register_noop(&ch, "touch");
        // The decaf driver posts a register write, then faults before it
        // launches: the token must resolve as cancelled, not leak.
        ch.call_async(&k, Domain::Decaf, "writel", &[], &[])
            .unwrap();
        ch.call_async(&k, Domain::Nucleus, "touch", &[], &[])
            .unwrap();
        assert_eq!(ch.tokens_outstanding(), 2);
        ch.reset_end(Domain::Decaf).unwrap();
        let s = ch.stats();
        assert_eq!(s.tokens_cancelled, 1, "the decaf call was cancelled");
        assert_eq!(ch.tokens_outstanding(), 1, "the nucleus call survives");
        ch.flush(&k).unwrap();
        ch.harvest(&k);
        let s = ch.stats();
        assert_eq!(s.tokens_issued, s.tokens_harvested + s.tokens_cancelled);
        assert_eq!(ch.tokens_outstanding(), 0);
    }

    #[test]
    fn failed_async_batch_resolves_tokens_via_fallback() {
        let k = Kernel::new();
        let ch = async_channel();
        register_noop(&ch, "touch");
        let ran = Rc::new(Cell::new(0u32));
        let r = Rc::clone(&ran);
        ch.register_proc(
            Domain::Decaf,
            ProcDef {
                name: "count".into(),
                arg_types: vec![],
                handler: Rc::new(move |_, _, _, _| {
                    r.set(r.get() + 1);
                    XdrValue::Void
                }),
            },
        )
        .unwrap();
        let adapter = alloc_adapter(&ch);
        ch.call_async(&k, Domain::Nucleus, "touch", &[Some(adapter)], &[])
            .unwrap();
        ch.call_async(&k, Domain::Nucleus, "count", &[], &[])
            .unwrap();
        // Yank the first call's argument: the batch launch fails and the
        // per-call fallback runs synchronously — tokens must still
        // resolve exactly once.
        ch.heap(Domain::Nucleus).borrow_mut().free(adapter);
        ch.flush(&k).unwrap();
        assert_eq!(ran.get(), 1);
        let s = ch.stats();
        assert_eq!(s.tokens_issued, 2);
        assert_eq!(s.tokens_harvested, 2, "fallback resolves synchronously");
        assert_eq!(ch.tokens_outstanding(), 0);
        assert!(ch.harvest(&k).is_empty(), "nothing was launched");
    }

    #[test]
    fn async_busy_time_never_exceeds_batched() {
        // The acceptance property in miniature: the same deferred
        // workload, paced identically, costs no more busy time on async
        // than on batched — uncovered ≤ full cost by construction.
        let run = |config: ChannelConfig| {
            let k = Kernel::new();
            let ch = XpcChannel::new(
                spec(),
                MaskSet::full(),
                config,
                Domain::Nucleus,
                Domain::Decaf,
            );
            register_noop(&ch, "touch");
            let adapter = alloc_adapter(&ch);
            for _ in 0..40 {
                ch.call_deferred(&k, Domain::Nucleus, "touch", &[Some(adapter)], &[])
                    .unwrap();
                k.run_for(5_000);
                ch.flush_if_due(&k).unwrap();
            }
            ch.flush(&k).unwrap();
            ch.harvest(&k);
            let snap = k.snapshot();
            (snap.kernel_busy_ns + snap.user_busy_ns, ch.stats())
        };
        let (batched_busy, _) = run(ChannelConfig::kernel_user_batched());
        let (async_busy, s) = run(ChannelConfig::kernel_user_async());
        assert!(
            async_busy <= batched_busy,
            "async ({async_busy}) must not exceed batched ({batched_busy})"
        );
        assert!(s.overlap_ns > 0, "paced workload hides crossing latency");
        assert_eq!(s.tokens_issued, s.tokens_harvested + s.tokens_cancelled);
    }

    #[test]
    fn deadline_wakeup_flushes_idle_batched_channel() {
        // Regression: a deadline without an event. A lone deferred call
        // parks in the batch; if no further call or poll ever arrives,
        // nothing evaluates `flush_if_due` and the call waits forever.
        // With wakeups armed, a kernel timer fires *at* the deadline and
        // flushes from a work item — no manual polling below.
        const WINDOW: u64 = 50_000;
        let k = Kernel::new();
        let ch = Rc::new(XpcChannel::new(
            spec(),
            MaskSet::full(),
            ChannelConfig {
                batch_deadline_ns: WINDOW,
                ..ChannelConfig::kernel_user_batched()
            },
            Domain::Nucleus,
            Domain::Decaf,
        ));
        let ran = Rc::new(Cell::new(0u32));
        let r = Rc::clone(&ran);
        ch.register_proc(
            Domain::Decaf,
            ProcDef {
                name: "count".into(),
                arg_types: vec![],
                handler: Rc::new(move |_, _, _, _| {
                    r.set(r.get() + 1);
                    XdrValue::Void
                }),
            },
        )
        .unwrap();
        ch.arm_deadline_wakeups(&k);
        ch.call_deferred(&k, Domain::Nucleus, "count", &[], &[])
            .unwrap();
        assert_eq!(ch.pending_deferred(), 1, "the call parks in the batch");
        assert_eq!(ran.get(), 0);
        // Idle gap only: no call, no flush_if_due. The armed timer must
        // carry the flush on its own.
        k.run_for(WINDOW * 2);
        assert_eq!(ran.get(), 1, "deadline flush fired from the timer");
        assert_eq!(ch.pending_deferred(), 0);
        assert_eq!(ch.stats().flushes, 1);
        assert!(k.violations().is_empty(), "flush ran in process context");
    }

    #[test]
    fn deadline_wakeup_flushes_idle_async_channel() {
        // Same latent bug on the completion transport: a parked
        // `call_async` whose caller went to do other work. The timer
        // launches the batch at the deadline; the token resolves after a
        // harvest without the caller ever re-entering the channel.
        const WINDOW: u64 = 50_000;
        let k = Kernel::new();
        let ch = Rc::new(XpcChannel::new(
            spec(),
            MaskSet::full(),
            ChannelConfig {
                batch_deadline_ns: WINDOW,
                ..ChannelConfig::kernel_user_async()
            },
            Domain::Nucleus,
            Domain::Decaf,
        ));
        let ran = Rc::new(Cell::new(0u32));
        let r = Rc::clone(&ran);
        ch.register_proc(
            Domain::Decaf,
            ProcDef {
                name: "count".into(),
                arg_types: vec![],
                handler: Rc::new(move |_, _, _, _| {
                    r.set(r.get() + 1);
                    XdrValue::Void
                }),
            },
        )
        .unwrap();
        ch.arm_deadline_wakeups(&k);
        let token = ch
            .call_async(&k, Domain::Nucleus, "count", &[], &[])
            .unwrap();
        assert_eq!(ch.pending_deferred(), 1);
        k.run_for(WINDOW * 2);
        assert_eq!(ch.pending_deferred(), 0, "timer launched the batch");
        assert_eq!(ran.get(), 1, "handler ran from the deadline flush");
        assert!(ch.stats().flushes >= 1);
        ch.harvest(&k);
        assert!(ch.wait_token(&k, token).is_ok());
        assert_eq!(ch.tokens_outstanding(), 0);
        // The wakeup is one-shot per parked batch: nothing queued now, so
        // letting more virtual time pass must not re-fire or flush again.
        let flushes = ch.stats().flushes;
        k.run_for(WINDOW * 4);
        assert_eq!(
            ch.stats().flushes,
            flushes,
            "no spurious re-fires when idle"
        );
    }
}
