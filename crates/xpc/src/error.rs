//! XPC error type.

use decaf_xdr::XdrError;
use std::fmt;

/// Result alias for XPC operations.
pub type XpcResult<T> = Result<T, XpcError>;

/// Errors surfaced by cross-domain calls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XpcError {
    /// Marshaling or unmarshaling failed.
    Xdr(XdrError),
    /// The named procedure is not registered in the target domain.
    UnknownProc {
        /// Target domain name.
        domain: String,
        /// Procedure that was requested.
        proc: String,
    },
    /// The user-level handler panicked; the kernel survives, the decaf
    /// driver needs recovery.
    DecafFault(String),
    /// A call was attempted to a domain with no registered state.
    UnknownDomain(String),
    /// Deferred handlers kept re-deferring and the flush loop gave up
    /// with this many calls still parked — program order is broken.
    FlushDiverged(usize),
    /// The data-path ring or its buffer pool is out of capacity and a
    /// doorbell did not relieve it: the producer must back off.
    Backpressure(String),
    /// A sharded call could not be steered to one shard: its object
    /// arguments are homed on different shards, or an argument has no
    /// recorded home (home-channel pinning violated).
    ShardConflict(String),
    /// An admission controller refused the request at the door — unlike
    /// [`XpcError::Backpressure`] no capacity was consumed; the request
    /// was never queued and there is nothing to reclaim before retrying.
    AdmissionReject(String),
    /// The request itself is malformed — e.g. a URB whose segment chain
    /// is shorter than its requested length. Unlike
    /// [`XpcError::Backpressure`] no amount of reclaim-and-retry can
    /// help: the caller's request must change.
    InvalidRequest(String),
}

impl fmt::Display for XpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XpcError::Xdr(e) => write!(f, "marshaling error: {e}"),
            XpcError::UnknownProc { domain, proc } => {
                write!(f, "no procedure `{proc}` registered in {domain}")
            }
            XpcError::DecafFault(msg) => write!(f, "decaf driver fault: {msg}"),
            XpcError::UnknownDomain(d) => write!(f, "unknown domain `{d}`"),
            XpcError::FlushDiverged(n) => {
                write!(
                    f,
                    "deferred-call flush diverged with {n} calls still queued"
                )
            }
            XpcError::Backpressure(what) => {
                write!(f, "data-path backpressure: {what}")
            }
            XpcError::ShardConflict(what) => {
                write!(f, "shard steering conflict: {what}")
            }
            XpcError::AdmissionReject(what) => {
                write!(f, "admission refused: {what}")
            }
            XpcError::InvalidRequest(what) => {
                write!(f, "invalid request: {what}")
            }
        }
    }
}

impl std::error::Error for XpcError {}

impl From<XdrError> for XpcError {
    fn from(e: XdrError) -> Self {
        XpcError::Xdr(e)
    }
}
