//! Extension Procedure Call (XPC) for Decaf Drivers.
//!
//! XPC, originally built for the Nooks driver-isolation subsystem and
//! extended by Microdrivers and Decaf, provides procedure calls between
//! protection domains with five services (paper §2.3):
//!
//! 1. **Control transfer** — procedure-call semantics across the
//!    kernel/user boundary (block and wait), behind the pluggable
//!    [`transport::Transport`] trait: thread reuse, dedicated-thread
//!    handoff, deferred-call batching that flushes many calls in one
//!    crossing, or completion-based async launches whose crossing cost is
//!    banked against a [`transport::CompletionToken`] and settled — net of
//!    whatever computation overlapped the crossing — at harvest time.
//! 2. **Object transfer** — field-selective XDR marshaling of structures
//!    ([`decaf_xdr`]).
//! 3. **Object sharing** — an [`tracker::ObjectTracker`] records each
//!    shared object so the same object is updated, never duplicated, when
//!    it crosses a boundary again; a type tag disambiguates embedded
//!    structures that share a C address (§3.1.2).
//! 4. **Synchronization** — [`combolock::Combolock`]: a spinlock while
//!    only the kernel uses it, a semaphore once user mode participates
//!    (§3.1.3).
//! 5. **Stubs** — [`endpoint::XpcChannel`] performs the six stub steps of
//!    §3.1.1 (tracker translation, marshal, transfer, unmarshal, dispatch,
//!    out-parameter return).
//!
//! On top of these, [`datapath::DataPathChannel`] adds a *zero-copy data
//! path*: payloads live in a pinned shared-memory buffer pool, 16-byte
//! descriptors ride single-producer/single-consumer rings, and a
//! watermark/deadline-coalesced doorbell rides the control transport —
//! so hosting the packet hot path at user level stops costing per-byte
//! marshaling. [`urbpath::UrbDataPath`] is its request/response sibling
//! for storage: URB submit descriptors flow one way, completions carry
//! status, actual length and the payload run's *ownership* back the
//! other — the mechanism that lets a `tar` stream ride the rings just
//! like netperf does.
//!
//! [`shard::ShardedChannel`] scales both layers out: N parallel channels
//! (per-CPU or per-flow) behind one facade, each with its own transport
//! queue, delta maps and generation counters — home-channel pinning for
//! shared objects, flow-hash steering for data-path traffic, stats that
//! aggregate across shards, and per-shard fault recovery.
//! [`shardurb::ShardedUrbPath`] rides that facade for storage: one URB
//! data path per shard over a [`decaf_shmring::UrbRingSet`], steered per
//! LUN (a storage transaction's FIFO order is load-bearing), with
//! per-shard staged backpressure and completion steering back to the
//! submitting shard.
//!
//! Domains are [`domain::Domain::Nucleus`] (kernel),
//! [`domain::Domain::Library`] (user-level C) and
//! [`domain::Domain::Decaf`] (user-level managed language). The decaf
//! driver runs at user level; the [`runtime::NuclearRuntime`] disables the
//! device's interrupt while user-level code runs so the driver never
//! interrupts itself.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod combolock;
pub mod datapath;
pub mod domain;
pub mod endpoint;
pub mod error;
pub mod runtime;
pub mod shard;
pub mod shardurb;
pub mod tracker;
pub mod transport;
pub mod urbpath;

pub use admission::{
    AdmissionController, AdmissionPolicy, AdmissionStats, AdmissionVerdict, TokenBucket,
    TrafficClass,
};
pub use combolock::{ComboStats, Combolock};
pub use datapath::{DataPathChannel, DataPathEnd};
pub use domain::Domain;
pub use endpoint::{ChannelConfig, ChannelStats, ProcDef, SharedObject, XpcChannel};
pub use error::{XpcError, XpcResult};
pub use runtime::{DecafRuntime, NuclearRuntime};
pub use shard::{ShardPolicy, ShardedChannel, MAX_SHARDS, SHARD_HEAP_STRIDE};
pub use shardurb::ShardedUrbPath;
pub use tracker::{ObjectTracker, TrackerStats};
pub use transport::{
    Async, Batched, CompletionToken, DeferredCall, InProc, Threaded, Transport, TransportKind,
};
pub use urbpath::{UrbDataPath, UrbEnd, UrbPathStats, UrbReclaim};
