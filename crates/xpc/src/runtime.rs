//! Runtime support shared by all decaf drivers.
//!
//! "Decaf Drivers provides runtime support common to all decaf drivers.
//! The runtime for user-level code, the decaf runtime, contains code
//! supporting all decaf drivers. The kernel runtime is a separate kernel
//! module, called the nuclear runtime, that is linked to every driver
//! nucleus" (paper §3).

use std::cell::Cell;
use std::rc::Rc;

use decaf_simkernel::Kernel;
use decaf_xdr::graph::CAddr;
use decaf_xdr::XdrValue;

use crate::domain::Domain;
use crate::endpoint::XpcChannel;
use crate::error::{XpcError, XpcResult};

/// The kernel-side runtime linked into every driver nucleus.
///
/// Its central job is guarding upcalls: "the nuclear runtime disables
/// interrupts from the driver's device with `disable_irq` while the decaf
/// driver runs" (§3.1.3), so the driver never interrupts itself. It also
/// counts decaf-driver invocations, the statistic §4.2 reports (e.g. the
/// ens1371 decaf driver was called 15 times during playback).
pub struct NuclearRuntime {
    kernel: Kernel,
    channel: Rc<XpcChannel>,
    device_irq: Option<u32>,
    decaf_invocations: Cell<u64>,
}

impl NuclearRuntime {
    /// Creates the runtime for one driver nucleus.
    pub fn new(kernel: Kernel, channel: Rc<XpcChannel>, device_irq: Option<u32>) -> Self {
        NuclearRuntime {
            kernel,
            channel,
            device_irq,
            decaf_invocations: Cell::new(0),
        }
    }

    /// The channel to this driver's decaf driver.
    pub fn channel(&self) -> &Rc<XpcChannel> {
        &self.channel
    }

    /// Number of upcalls made into the decaf driver.
    pub fn decaf_invocations(&self) -> u64 {
        self.decaf_invocations.get()
    }

    /// Invokes a decaf-driver procedure with the device IRQ masked.
    pub fn upcall(
        &self,
        proc: &str,
        args: &[Option<CAddr>],
        scalars: &[XdrValue],
    ) -> XpcResult<XdrValue> {
        if let Some(line) = self.device_irq {
            self.kernel.disable_irq(line);
        }
        self.decaf_invocations.set(self.decaf_invocations.get() + 1);
        let result = self
            .channel
            .call(&self.kernel, Domain::Nucleus, proc, args, scalars);
        if let Some(line) = self.device_irq {
            self.kernel.enable_irq(line);
        }
        result
    }

    /// Invokes a decaf procedure and maps its integer return to a kernel
    /// errno-style result: negative values become errors.
    pub fn upcall_errno(
        &self,
        proc: &str,
        args: &[Option<CAddr>],
        scalars: &[XdrValue],
    ) -> XpcResult<i32> {
        match self.upcall(proc, args, scalars)? {
            XdrValue::Int(v) => Ok(v),
            XdrValue::Void => Ok(0),
            other => Err(XpcError::Xdr(decaf_xdr::XdrError::TypeMismatch {
                expected: "int return".into(),
                found: other.kind().into(),
            })),
        }
    }

    /// Defers `f` to a worker thread (process context). This is how code
    /// that runs at high priority — timers, interrupt handlers — reaches
    /// the decaf driver legally (§3.1.3).
    pub fn defer(&self, name: &str, f: impl FnOnce(&Kernel) + 'static) {
        self.kernel.schedule_work(name, f);
    }
}

impl std::fmt::Debug for NuclearRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NuclearRuntime")
            .field("device_irq", &self.device_irq)
            .field("decaf_invocations", &self.decaf_invocations.get())
            .finish()
    }
}

/// The user-side runtime shared by all decaf drivers.
///
/// Provides the downcall path into the kernel and the recovery path after
/// a decaf-driver fault.
pub struct DecafRuntime {
    kernel: Kernel,
    channel: Rc<XpcChannel>,
    restarts: Cell<u64>,
}

impl DecafRuntime {
    /// Creates the user-side runtime over a channel to the nucleus.
    pub fn new(kernel: Kernel, channel: Rc<XpcChannel>) -> Self {
        DecafRuntime {
            kernel,
            channel,
            restarts: Cell::new(0),
        }
    }

    /// The channel to the driver nucleus.
    pub fn channel(&self) -> &Rc<XpcChannel> {
        &self.channel
    }

    /// Invokes a kernel (nucleus) procedure from the decaf driver.
    pub fn downcall(
        &self,
        proc: &str,
        args: &[Option<CAddr>],
        scalars: &[XdrValue],
    ) -> XpcResult<XdrValue> {
        self.channel
            .call(&self.kernel, Domain::Decaf, proc, args, scalars)
    }

    /// Restarts the decaf driver after a fault: clears its heap and
    /// tracker so the next upcall re-transfers fresh state.
    pub fn restart(&self) -> XpcResult<()> {
        self.restarts.set(self.restarts.get() + 1);
        self.channel.reset_end(Domain::Decaf)
    }

    /// Number of restarts performed.
    pub fn restarts(&self) -> u64 {
        self.restarts.get()
    }
}

impl std::fmt::Debug for DecafRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DecafRuntime")
            .field("restarts", &self.restarts.get())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::{ChannelConfig, ProcDef};
    use decaf_xdr::mask::MaskSet;
    use decaf_xdr::XdrSpec;

    fn setup() -> (Kernel, Rc<XpcChannel>) {
        let kernel = Kernel::new();
        let spec = XdrSpec::parse("struct s { int x; };").unwrap();
        let ch = Rc::new(XpcChannel::new(
            spec,
            MaskSet::full(),
            ChannelConfig::kernel_user(),
            Domain::Nucleus,
            Domain::Decaf,
        ));
        (kernel, ch)
    }

    #[test]
    fn upcall_masks_device_irq_while_decaf_runs() {
        let (kernel, ch) = setup();
        let irq_line = 7;
        let fired = Rc::new(Cell::new(false));
        let f = Rc::clone(&fired);
        kernel
            .request_irq(irq_line, "dev", Rc::new(move |_| f.set(true)))
            .unwrap();

        // The decaf handler raises the device IRQ mid-execution and then
        // checks it is *not* delivered while it runs.
        ch.register_proc(
            Domain::Decaf,
            ProcDef {
                name: "probe".into(),
                arg_types: vec![],
                handler: Rc::new(move |k, _, _, _| {
                    k.raise_irq(7);
                    k.schedule_point();
                    assert!(k.irq_pending(7), "IRQ must stay masked during the upcall");
                    XdrValue::Int(0)
                }),
            },
        )
        .unwrap();

        let rt = NuclearRuntime::new(kernel.clone(), Rc::clone(&ch), Some(irq_line));
        rt.upcall("probe", &[], &[]).unwrap();
        assert!(!fired.get());
        // After the upcall returns, the pending IRQ is delivered.
        kernel.schedule_point();
        assert!(fired.get());
        assert_eq!(rt.decaf_invocations(), 1);
    }

    #[test]
    fn upcall_errno_maps_ints() {
        let (kernel, ch) = setup();
        ch.register_proc(
            Domain::Decaf,
            ProcDef {
                name: "ret5".into(),
                arg_types: vec![],
                handler: Rc::new(|_, _, _, _| XdrValue::Int(5)),
            },
        )
        .unwrap();
        let rt = NuclearRuntime::new(kernel, ch, None);
        assert_eq!(rt.upcall_errno("ret5", &[], &[]).unwrap(), 5);
    }

    #[test]
    fn restart_clears_decaf_state() {
        let (kernel, ch) = setup();
        ch.register_proc(
            Domain::Decaf,
            ProcDef {
                name: "boom".into(),
                arg_types: vec![],
                handler: Rc::new(|_, _, _, _| panic!("bug")),
            },
        )
        .unwrap();
        let nuc = NuclearRuntime::new(kernel.clone(), Rc::clone(&ch), None);
        let dec = DecafRuntime::new(kernel, ch);
        let err = nuc.upcall("boom", &[], &[]).unwrap_err();
        assert!(matches!(err, XpcError::DecafFault(_)));
        dec.restart().unwrap();
        assert_eq!(dec.restarts(), 1);
    }

    #[test]
    fn downcall_reaches_nucleus() {
        let (kernel, ch) = setup();
        ch.register_proc(
            Domain::Nucleus,
            ProcDef {
                name: "readl".into(),
                arg_types: vec![],
                handler: Rc::new(|_, _, _, s| XdrValue::Int(s[0].as_int().unwrap() * 2)),
            },
        )
        .unwrap();
        let rt = DecafRuntime::new(kernel, ch);
        assert_eq!(
            rt.downcall("readl", &[], &[XdrValue::Int(21)]).unwrap(),
            XdrValue::Int(42)
        );
    }
}
