//! Multi-channel sharded XPC: N parallel channels behind one facade.
//!
//! A single [`XpcChannel`] serializes every kernel/user crossing through
//! one transport queue and one pair of delta maps. Heavy traffic wants N
//! parallel channels — per-CPU or per-flow — each with its *own*
//! transport queue, delta maps and generation counters, so independent
//! work never contends. [`ShardedChannel`] is that facade, with the two
//! policies sharding requires:
//!
//! * **Home-channel pinning** — every shared object is allocated through
//!   the facade and assigned a *home shard*; calls carrying the object
//!   always steer to that shard. The invariant this buys: an object's
//!   delta state (generation counters, last-sent maps, tracker
//!   associations) lives on exactly one channel, so no object is ever
//!   dirtied — or delta-encoded — on two shards in one generation.
//!   Mixing objects homed on different shards in one call is a
//!   steering conflict ([`crate::XpcError::ShardConflict`]), never a
//!   silent split.
//! * **Flow-hash steering** — scalar-only calls (doorbells, posted
//!   register writes, data-path descriptors) have no home; they steer by
//!   a deterministic flow hash so one flow stays ordered on one shard
//!   while distinct flows spread.
//!
//! Each shard channel's heaps are based at the domain base plus
//! `shard × `[`SHARD_HEAP_STRIDE`], so every address in the system names
//! exactly one (shard, domain, object) and the facade can recover an
//! object's home from its address alone.
//!
//! Stats compose by [`ChannelStats::merge`]: counters sum across shards,
//! high-water marks take the max.
//!
//! Fault recovery composes per shard: [`ShardedChannel::recover_shard`]
//! takes a dead shard's parked deferred calls out of its transport,
//! resets the failed end (clearing both delta maps, so nothing is ever
//! delta-encoded against vanished state), and requeues the surviving
//! calls on the fresh channel — each call applies exactly once, and the
//! first post-recovery transfer of every object is a full marshal.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use decaf_shmring::flow_hash;
use decaf_simkernel::Kernel;
use decaf_xdr::graph::CAddr;
use decaf_xdr::mask::MaskSet;
use decaf_xdr::{XdrSpec, XdrValue};

use crate::domain::Domain;
use crate::endpoint::{ChannelConfig, ChannelStats, ProcDef, XpcChannel};
use crate::error::{XpcError, XpcResult};
use crate::tracker::TrackerStats;

/// Oracle-sensitivity seam for the fault-exploration harness
/// (`tests/shard_sched.rs`): one-shot, thread-local switches that plant
/// a *deliberate* recovery bug so the harness can prove its differential
/// oracle actually rejects one. An oracle that cannot catch a planted
/// mutation proves nothing about the real code it blesses.
///
/// Debug-build only (`debug_assertions`): `#[cfg(test)]` would not
/// reach an integration-test dependency build of this crate, and the
/// release build — the one ablations measure — must not carry the seam
/// at all. Each switch disarms itself at its first consumption, so a
/// single armed replay sees exactly one planted bug.
#[cfg(debug_assertions)]
pub mod mutation {
    use std::cell::Cell;

    thread_local! {
        static DROP_ONE_REQUEUE: Cell<bool> = const { Cell::new(false) };
    }

    /// Arms the planted bug: the next [`super::ShardedChannel::recover_shard`]
    /// on this thread silently drops the first surviving parked call
    /// instead of requeuing it — the call is lost and its completion
    /// token leaks, which the exactly-once/ledger oracle must reject.
    pub fn arm_drop_one_requeue() {
        DROP_ONE_REQUEUE.with(|c| c.set(true));
    }

    /// Disarms without consuming (cleanup after a caught failure).
    pub fn disarm() {
        DROP_ONE_REQUEUE.with(|c| c.set(false));
    }

    pub(crate) fn take_drop_one_requeue() -> bool {
        DROP_ONE_REQUEUE.with(|c| c.replace(false))
    }
}

/// Heap-address stride between shards: each shard's heaps occupy
/// `[domain_base + shard·STRIDE, domain_base + (shard+1)·STRIDE)`.
/// At 0x100 bytes per object that is 4096 objects per (shard, domain)
/// heap — far beyond any driver's working set.
pub const SHARD_HEAP_STRIDE: u64 = 0x0010_0000;

/// Most shards a facade will build: keeps every shard's address range
/// inside its domain's region (domain bases are 0x3000_0000 apart).
pub const MAX_SHARDS: usize = 64;

/// How scalar-only calls (no object argument to pin by) are steered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardPolicy {
    /// Pin them to shard 0, the control shard: configuration traffic
    /// stays ordered on one queue. Object-carrying calls still steer to
    /// their argument's home shard.
    HomePin,
    /// Steer by a flow hash of the procedure name (or the explicit flow
    /// key of the `*_flow` call variants): data-path traffic spreads
    /// across shards while each flow stays ordered.
    FlowHash,
}

/// N parallel [`XpcChannel`]s behind one facade.
///
/// # Example
///
/// ```
/// use std::rc::Rc;
/// use decaf_simkernel::Kernel;
/// use decaf_xdr::{mask::MaskSet, XdrSpec, XdrValue};
/// use decaf_xpc::{ChannelConfig, Domain, ProcDef, ShardPolicy, ShardedChannel};
///
/// let kernel = Kernel::new();
/// let ch = ShardedChannel::new(
///     XdrSpec::parse("struct dev { int busy; };").unwrap(),
///     MaskSet::full(),
///     ChannelConfig::kernel_user_batched(),
///     Domain::Nucleus,
///     Domain::Decaf,
///     4,
///     ShardPolicy::FlowHash,
/// );
/// ch.register_proc(
///     Domain::Decaf,
///     ProcDef {
///         name: "touch".into(),
///         arg_types: vec!["dev".into()],
///         handler: Rc::new(|_, _, _, _| XdrValue::Int(0)),
///     },
/// )
/// .unwrap();
///
/// // Objects allocate through the facade and get a home shard; calls
/// // carrying the object always steer there.
/// let dev = ch.alloc_shared(Domain::Nucleus, "dev").unwrap();
/// let home = ch.home_of(dev).unwrap();
/// ch.call(&kernel, Domain::Nucleus, "touch", &[Some(dev)], &[]).unwrap();
/// assert_eq!(ch.shard_stats(home).round_trips, 1);
/// assert_eq!(ch.stats().round_trips, 1, "merged view sums the shards");
/// ```
pub struct ShardedChannel {
    shards: Vec<Rc<XpcChannel>>,
    policy: ShardPolicy,
    /// Home shard of every facade-allocated object, keyed by the address
    /// at the allocating end (addresses are globally unique across
    /// shards thanks to the heap stride).
    homes: RefCell<HashMap<CAddr, usize>>,
    /// Round-robin cursor for home assignment.
    next_home: Cell<usize>,
}

impl ShardedChannel {
    /// Builds `shards` parallel channels between `a` and `b`, each with
    /// its own transport, delta maps and heaps (disjoint address
    /// ranges).
    ///
    /// # Panics
    /// Panics if `shards` is zero or exceeds [`MAX_SHARDS`].
    pub fn new(
        spec: XdrSpec,
        masks: MaskSet,
        config: ChannelConfig,
        a: Domain,
        b: Domain,
        shards: usize,
        policy: ShardPolicy,
    ) -> Rc<Self> {
        assert!(
            (1..=MAX_SHARDS).contains(&shards),
            "shard count {shards} outside 1..={MAX_SHARDS}"
        );
        Rc::new(ShardedChannel {
            shards: (0..shards)
                .map(|i| {
                    Rc::new(XpcChannel::with_heap_offset(
                        spec.clone(),
                        masks.clone(),
                        config,
                        a,
                        b,
                        i as u64 * SHARD_HEAP_STRIDE,
                    ))
                })
                .collect(),
            policy,
            homes: RefCell::new(HashMap::new()),
            next_home: Cell::new(0),
        })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The steering policy for scalar-only calls.
    pub fn policy(&self) -> ShardPolicy {
        self.policy
    }

    /// Shard `i`'s underlying channel (data paths attach their doorbells
    /// here; shard 0 doubles as the control channel).
    pub fn shard(&self, i: usize) -> &Rc<XpcChannel> {
        &self.shards[i]
    }

    /// Registers `def` at `domain`'s end of *every* shard, so a call is
    /// dispatchable wherever steering sends it.
    pub fn register_proc(&self, domain: Domain, def: ProcDef) -> XpcResult<()> {
        for ch in &self.shards {
            ch.register_proc(domain, def.clone())?;
        }
        Ok(())
    }

    /// Allocates a shared object on the next home shard (round-robin)
    /// and records the pinning. Returns the object's address.
    pub fn alloc_shared(&self, domain: Domain, type_name: &str) -> XpcResult<CAddr> {
        let home = self.next_home.get();
        self.next_home.set((home + 1) % self.shards.len());
        self.alloc_shared_at(home, domain, type_name)
    }

    /// Allocates a shared object homed on a specific shard.
    pub fn alloc_shared_at(
        &self,
        shard: usize,
        domain: Domain,
        type_name: &str,
    ) -> XpcResult<CAddr> {
        let addr = self.shards[shard].alloc_shared(domain, type_name)?;
        self.homes.borrow_mut().insert(addr, shard);
        Ok(addr)
    }

    /// The home shard of a facade-allocated object.
    pub fn home_of(&self, addr: CAddr) -> Option<usize> {
        self.homes.borrow().get(&addr).copied()
    }

    /// The heap of `domain`'s end on shard `i`.
    pub fn heap(&self, shard: usize, domain: Domain) -> Rc<RefCell<decaf_xdr::graph::ObjHeap>> {
        self.shards[shard].heap(domain)
    }

    /// Steers one call: object arguments pin it to their (single) home
    /// shard; scalar-only calls follow `flow` or the facade policy.
    /// Every successful steering decision emits a `shard.steer` trace
    /// instant recording the chosen shard (by-home or by-flow).
    fn steer(
        &self,
        kernel: &Kernel,
        proc: &str,
        args: &[Option<CAddr>],
        flow: Option<u64>,
    ) -> XpcResult<usize> {
        let homes = self.homes.borrow();
        let mut object_home = None;
        for addr in args.iter().flatten() {
            match homes.get(addr) {
                Some(&h) => match object_home {
                    None => object_home = Some(h),
                    Some(prev) if prev == h => {}
                    Some(prev) => {
                        return Err(XpcError::ShardConflict(format!(
                            "`{proc}`: arguments homed on shards {prev} and {h}"
                        )))
                    }
                },
                None => {
                    return Err(XpcError::ShardConflict(format!(
                        "`{proc}`: argument {addr:#x} has no home shard \
                         (allocate shared objects through the facade)"
                    )))
                }
            }
        }
        let (shard, by_home) = match object_home {
            Some(home) => (home, 1),
            None => {
                let shard = match flow {
                    Some(key) => (flow_hash(key) % self.shards.len() as u64) as usize,
                    None => match self.policy {
                        ShardPolicy::HomePin => 0,
                        ShardPolicy::FlowHash => {
                            let key = proc.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                                (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
                            });
                            (flow_hash(key) % self.shards.len() as u64) as usize
                        }
                    },
                };
                (shard, 0)
            }
        };
        kernel.trace_instant(
            "shard",
            "steer",
            &[("shard", shard as u64), ("by_home", by_home)],
        );
        Ok(shard)
    }

    /// A synchronous call through the facade; steered to the argument's
    /// home shard (object-carrying calls) or by the facade's
    /// [`ShardPolicy`] (scalar-only calls). Returns the handler's scalar
    /// result.
    pub fn call(
        &self,
        kernel: &Kernel,
        from: Domain,
        proc: &str,
        args: &[Option<CAddr>],
        scalars: &[XdrValue],
    ) -> XpcResult<XdrValue> {
        let shard = self.steer(kernel, proc, args, None)?;
        kernel.shard_scope(shard, || {
            self.shards[shard].call(kernel, from, proc, args, scalars)
        })
    }

    /// A synchronous scalar-only call steered by an explicit flow key.
    pub fn call_flow(
        &self,
        kernel: &Kernel,
        from: Domain,
        flow: u64,
        proc: &str,
        scalars: &[XdrValue],
    ) -> XpcResult<XdrValue> {
        let shard = self.steer(kernel, proc, &[], Some(flow))?;
        kernel.shard_scope(shard, || {
            self.shards[shard].call(kernel, from, proc, &[], scalars)
        })
    }

    /// A deferred (result-free) call through the facade.
    pub fn call_deferred(
        &self,
        kernel: &Kernel,
        from: Domain,
        proc: &str,
        args: &[Option<CAddr>],
        scalars: &[XdrValue],
    ) -> XpcResult<()> {
        let shard = self.steer(kernel, proc, args, None)?;
        kernel.shard_scope(shard, || {
            self.shards[shard].call_deferred(kernel, from, proc, args, scalars)
        })
    }

    /// An asynchronous (completion-token) call through the facade;
    /// steered like [`ShardedChannel::call_deferred`]. The token belongs
    /// to the steered shard's channel — harvest it per shard, or sweep
    /// every shard with [`ShardedChannel::harvest_all`].
    pub fn call_async(
        &self,
        kernel: &Kernel,
        from: Domain,
        proc: &str,
        args: &[Option<CAddr>],
        scalars: &[XdrValue],
    ) -> XpcResult<crate::transport::CompletionToken> {
        let shard = self.steer(kernel, proc, args, None)?;
        kernel.shard_scope(shard, || {
            self.shards[shard].call_async(kernel, from, proc, args, scalars)
        })
    }

    /// Harvests every shard's launched batches (settling each banked
    /// crossing against the time that elapsed since its launch); returns
    /// how many tokens resolved across the facade.
    pub fn harvest_all(&self, kernel: &Kernel) -> usize {
        let mut resolved = 0;
        for (i, ch) in self.shards.iter().enumerate() {
            resolved += kernel.shard_scope(i, || ch.harvest(kernel).len());
        }
        resolved
    }

    /// Completion tokens outstanding across all shards.
    pub fn tokens_outstanding(&self) -> usize {
        self.shards.iter().map(|ch| ch.tokens_outstanding()).sum()
    }

    /// A deferred scalar-only call steered by an explicit flow key.
    pub fn call_deferred_flow(
        &self,
        kernel: &Kernel,
        from: Domain,
        flow: u64,
        proc: &str,
        scalars: &[XdrValue],
    ) -> XpcResult<()> {
        let shard = self.steer(kernel, proc, &[], Some(flow))?;
        kernel.shard_scope(shard, || {
            self.shards[shard].call_deferred(kernel, from, proc, &[], scalars)
        })
    }

    /// Flushes every shard's deferred queue. Per-shard isolation: a
    /// broken shard (e.g. a diverging flush) never blocks its siblings —
    /// every shard is flushed, and the first error is reported after the
    /// sweep completes.
    pub fn flush_all(&self, kernel: &Kernel) -> XpcResult<()> {
        let mut first_err = None;
        for (i, ch) in self.shards.iter().enumerate() {
            if let Err(e) = kernel.shard_scope(i, || ch.flush(kernel)) {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Polls every shard's adaptive-batching deadline; returns how many
    /// shards flushed. The facade polls *all* shards — a due shard must
    /// not wait for traffic on its siblings, and a shard whose flush
    /// errors does not starve the ones after it (the first error is
    /// reported once the sweep completes).
    pub fn flush_if_due(&self, kernel: &Kernel) -> XpcResult<usize> {
        let mut flushed = 0;
        let mut first_err = None;
        for (i, ch) in self.shards.iter().enumerate() {
            match kernel.shard_scope(i, || ch.flush_if_due(kernel)) {
                Ok(true) => flushed += 1,
                Ok(false) => {}
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(flushed),
        }
    }

    /// Opts every shard into timer-driven deadline flushes (see
    /// [`XpcChannel::arm_deadline_wakeups`]): each shard gets its own
    /// kernel timer, and its timer-driven flushes charge that shard's
    /// ledger via the shard-scoped variant. Open-loop load wants this —
    /// between arrival events nobody polls `flush_if_due`, so a parked
    /// call's deadline needs a timer to fire on time.
    pub fn arm_deadline_wakeups(&self, kernel: &Kernel) {
        for (i, ch) in self.shards.iter().enumerate() {
            ch.arm_deadline_wakeups_on(kernel, Some(i));
        }
    }

    /// Deferred calls parked across all shards.
    pub fn pending_deferred(&self) -> usize {
        self.shards.iter().map(|ch| ch.pending_deferred()).sum()
    }

    /// Aggregated counters: sums across shards, max for high-water marks
    /// (see [`ChannelStats::merge`]).
    pub fn stats(&self) -> ChannelStats {
        let mut total = ChannelStats::default();
        for ch in &self.shards {
            total.merge(&ch.stats());
        }
        total
    }

    /// One shard's counters.
    pub fn shard_stats(&self, shard: usize) -> ChannelStats {
        self.shards[shard].stats()
    }

    /// Aggregated object-tracker counters for one domain across shards.
    pub fn tracker_stats(&self, domain: Domain) -> TrackerStats {
        let mut total = TrackerStats::default();
        for ch in &self.shards {
            let s = ch.tracker_stats(domain);
            total.associations += s.associations;
            total.hits += s.hits;
            total.misses += s.misses;
            total.releases += s.releases;
        }
        total
    }

    /// Recovers shard `shard` after its `failed` end died mid-burst:
    ///
    /// 1. harvests the shard's already-launched batches first — a
    ///    launched call's effects landed before the fault, so its token
    ///    resolves as harvested, never lost to the reset;
    /// 2. takes every still-parked deferred call out of the transport;
    /// 3. resets the failed end (heap, tracker, both delta maps — so no
    ///    later transfer delta-encodes against vanished state), which
    ///    cancels the tokens of calls originating there;
    /// 4. requeues the calls that did *not* originate at the failed end
    ///    (those died with their domain) onto the fresh channel, each
    ///    keeping its original completion token — requeuing never
    ///    re-issues, so `tokens_issued == tokens_harvested +
    ///    tokens_cancelled` holds across recovery.
    ///
    /// Each surviving call applies exactly once: calls already flushed
    /// before the fault are not requeued, and the taken queue is the
    /// not-yet-applied remainder. Returns the number of requeued calls.
    pub fn recover_shard(&self, kernel: &Kernel, shard: usize, failed: Domain) -> XpcResult<usize> {
        let _span = kernel.trace_span("shard", "recover");
        let ch = &self.shards[shard];
        kernel.shard_scope(shard, || {
            let _ = ch.harvest(kernel);
        });
        let parked = ch.take_deferred();
        ch.reset_end(failed)?;
        let mut requeued = 0;
        let mut cancelled = Vec::new();
        for call in parked {
            if call.from == failed {
                // Died with its domain: the call never applies, its
                // token resolves as cancelled.
                cancelled.extend(call.token);
                continue;
            }
            #[cfg(debug_assertions)]
            {
                if mutation::take_drop_one_requeue() {
                    // Planted bug (oracle-sensitivity harness): lose the
                    // surviving call, leak its token.
                    continue;
                }
            }
            kernel.shard_scope(shard, || ch.requeue_deferred(kernel, call))?;
            requeued += 1;
        }
        if !cancelled.is_empty() {
            kernel.trace_instant(
                "xpc.batch",
                "cancel",
                &[("shard", shard as u64), ("tokens", cancelled.len() as u64)],
            );
        }
        ch.cancel_tokens(&cancelled);
        Ok(requeued)
    }
}

impl std::fmt::Debug for ShardedChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedChannel")
            .field("shards", &self.shards.len())
            .field("policy", &self.policy)
            .field("homes", &self.homes.borrow().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decaf_simkernel::Kernel;

    fn spec() -> XdrSpec {
        XdrSpec::parse("struct st { int id; int value; };").unwrap()
    }

    /// Coalescing window used by the deadline-sensitive tests below,
    /// configured explicitly instead of reaching into transport
    /// defaults.
    const WINDOW: u64 = 80_000;

    fn sharded_with(n: usize, policy: ShardPolicy, config: ChannelConfig) -> Rc<ShardedChannel> {
        let sc = ShardedChannel::new(
            spec(),
            MaskSet::full(),
            config,
            Domain::Nucleus,
            Domain::Decaf,
            n,
            policy,
        );
        sc.register_proc(
            Domain::Decaf,
            ProcDef {
                name: "touch".into(),
                arg_types: vec!["st".into()],
                handler: Rc::new(|_, _, _, _| XdrValue::Int(0)),
            },
        )
        .unwrap();
        sc.register_proc(
            Domain::Decaf,
            ProcDef {
                name: "ping".into(),
                arg_types: vec![],
                handler: Rc::new(|_, _, _, _| XdrValue::Int(1)),
            },
        )
        .unwrap();
        sc
    }

    fn sharded(n: usize, policy: ShardPolicy) -> Rc<ShardedChannel> {
        sharded_with(
            n,
            policy,
            ChannelConfig {
                batch_deadline_ns: WINDOW,
                ..ChannelConfig::kernel_user_batched()
            },
        )
    }

    #[test]
    fn shard_heaps_are_disjoint() {
        let sc = sharded(4, ShardPolicy::HomePin);
        let k = Kernel::new();
        let mut addrs = Vec::new();
        for _ in 0..8 {
            addrs.push(sc.alloc_shared(Domain::Nucleus, "st").unwrap());
        }
        let unique: std::collections::HashSet<_> = addrs.iter().collect();
        assert_eq!(unique.len(), addrs.len(), "addresses unique across shards");
        // Round-robin homes: 8 objects over 4 shards, two each.
        for (i, a) in addrs.iter().enumerate() {
            assert_eq!(sc.home_of(*a), Some(i % 4));
        }
        // Calls steer to the home shard and only that shard's decaf heap
        // gains a copy.
        sc.call(&k, Domain::Nucleus, "touch", &[Some(addrs[1])], &[])
            .unwrap();
        for shard in 0..4 {
            let len = sc.heap(shard, Domain::Decaf).borrow().len();
            assert_eq!(len, usize::from(shard == 1), "shard {shard}");
        }
    }

    #[test]
    fn mixed_homes_are_a_steering_conflict() {
        let sc = sharded(2, ShardPolicy::HomePin);
        let k = Kernel::new();
        let a = sc.alloc_shared_at(0, Domain::Nucleus, "st").unwrap();
        let b = sc.alloc_shared_at(1, Domain::Nucleus, "st").unwrap();
        let err = sc
            .call(&k, Domain::Nucleus, "touch", &[Some(a), Some(b)], &[])
            .unwrap_err();
        assert!(matches!(err, XpcError::ShardConflict(_)), "{err}");
        // An unhomed address is refused too, not silently mis-steered.
        let err = sc
            .call(&k, Domain::Nucleus, "touch", &[Some(0xdead_beef)], &[])
            .unwrap_err();
        assert!(matches!(err, XpcError::ShardConflict(_)));
    }

    #[test]
    fn flow_steering_spreads_scalar_calls() {
        let sc = sharded(4, ShardPolicy::FlowHash);
        let k = Kernel::new();
        for flow in 0..32u64 {
            sc.call_flow(&k, Domain::Nucleus, flow, "ping", &[])
                .unwrap();
        }
        let per_shard: Vec<u64> = (0..4).map(|i| sc.shard_stats(i).round_trips).collect();
        assert_eq!(per_shard.iter().sum::<u64>(), 32);
        assert!(
            per_shard.iter().all(|&n| n > 0),
            "every shard saw traffic: {per_shard:?}"
        );
        // HomePin sends the same calls to the control shard instead.
        let pinned = sharded(4, ShardPolicy::HomePin);
        for _ in 0..8 {
            pinned.call(&k, Domain::Nucleus, "ping", &[], &[]).unwrap();
        }
        assert_eq!(pinned.shard_stats(0).round_trips, 8);
    }

    #[test]
    fn stats_aggregate_across_shards() {
        let sc = sharded(2, ShardPolicy::FlowHash);
        let k = Kernel::new();
        let a = sc.alloc_shared_at(0, Domain::Nucleus, "st").unwrap();
        let b = sc.alloc_shared_at(1, Domain::Nucleus, "st").unwrap();
        for obj in [a, b] {
            sc.call(&k, Domain::Nucleus, "touch", &[Some(obj)], &[])
                .unwrap();
        }
        let total = sc.stats();
        assert_eq!(total.round_trips, 2);
        assert_eq!(
            total.round_trips,
            sc.shard_stats(0).round_trips + sc.shard_stats(1).round_trips
        );
        assert!(total.bytes_in > 0);
    }

    #[test]
    fn per_shard_costs_attributed_through_scope() {
        let sc = sharded(2, ShardPolicy::FlowHash);
        let k = Kernel::new();
        let a = sc.alloc_shared_at(1, Domain::Nucleus, "st").unwrap();
        sc.call(&k, Domain::Nucleus, "touch", &[Some(a)], &[])
            .unwrap();
        let busy = k.shard_busy_ns();
        assert!(busy.len() >= 2 && busy[1] > 0, "{busy:?}");
        assert_eq!(busy.first().copied().unwrap_or(0), 0, "shard 0 idle");
    }

    #[test]
    fn deferred_calls_flush_per_shard() {
        let sc = sharded(2, ShardPolicy::FlowHash);
        let k = Kernel::new();
        let a = sc.alloc_shared_at(0, Domain::Nucleus, "st").unwrap();
        let b = sc.alloc_shared_at(1, Domain::Nucleus, "st").unwrap();
        for obj in [a, b] {
            for _ in 0..3 {
                sc.call_deferred(&k, Domain::Nucleus, "touch", &[Some(obj)], &[])
                    .unwrap();
            }
        }
        assert_eq!(sc.pending_deferred(), 6);
        sc.flush_all(&k).unwrap();
        assert_eq!(sc.pending_deferred(), 0);
        let total = sc.stats();
        assert_eq!(total.batched_calls, 6);
        assert_eq!(total.flushes, 2, "one flush per shard");
    }

    #[test]
    fn flush_if_due_polls_every_shard() {
        let sc = sharded(3, ShardPolicy::FlowHash);
        let k = Kernel::new();
        let a = sc.alloc_shared_at(1, Domain::Nucleus, "st").unwrap();
        let b = sc.alloc_shared_at(2, Domain::Nucleus, "st").unwrap();
        sc.call_deferred(&k, Domain::Nucleus, "touch", &[Some(a)], &[])
            .unwrap();
        sc.call_deferred(&k, Domain::Nucleus, "touch", &[Some(b)], &[])
            .unwrap();
        assert_eq!(sc.flush_if_due(&k).unwrap(), 0, "within the window");
        k.run_for(WINDOW + 1);
        assert_eq!(sc.flush_if_due(&k).unwrap(), 2, "both due shards flush");
        assert_eq!(sc.pending_deferred(), 0);
    }

    #[test]
    fn broken_shard_does_not_starve_sibling_flushes() {
        let sc = sharded(2, ShardPolicy::FlowHash);
        let k = Kernel::new();
        // Shard 0 hosts a diverging handler: every flush round re-defers
        // it, so XpcChannel::flush gives up with FlushDiverged.
        sc.register_proc(
            Domain::Decaf,
            ProcDef {
                name: "loop_forever".into(),
                arg_types: vec![],
                handler: Rc::new(|k, ch, _, _| {
                    let _ = ch.call_deferred(k, Domain::Nucleus, "loop_forever", &[], &[]);
                    XdrValue::Void
                }),
            },
        )
        .unwrap();
        let hits = Rc::new(Cell::new(0u32));
        let h = Rc::clone(&hits);
        sc.register_proc(
            Domain::Decaf,
            ProcDef {
                name: "count".into(),
                arg_types: vec![],
                handler: Rc::new(move |_, _, _, _| {
                    h.set(h.get() + 1);
                    XdrValue::Void
                }),
            },
        )
        .unwrap();
        sc.shard(0)
            .call_deferred(&k, Domain::Nucleus, "loop_forever", &[], &[])
            .unwrap();
        sc.shard(1)
            .call_deferred(&k, Domain::Nucleus, "count", &[], &[])
            .unwrap();
        k.run_for(WINDOW + 1);
        // Shard 0 errors, but shard 1's due flush still happens.
        let err = sc.flush_if_due(&k).unwrap_err();
        assert!(matches!(err, XpcError::FlushDiverged(_)), "{err}");
        assert_eq!(hits.get(), 1, "sibling shard starved by the broken one");
        let err = sc.flush_all(&k).unwrap_err();
        assert!(matches!(err, XpcError::FlushDiverged(_)));
        assert_eq!(sc.shard(1).pending_deferred(), 0);
    }

    #[test]
    fn recover_shard_requeues_without_double_apply() {
        let sc = sharded(2, ShardPolicy::FlowHash);
        let k = Kernel::new();
        let hits = Rc::new(Cell::new(0u32));
        let h = Rc::clone(&hits);
        sc.register_proc(
            Domain::Decaf,
            ProcDef {
                name: "count".into(),
                arg_types: vec![],
                handler: Rc::new(move |_, _, _, _| {
                    h.set(h.get() + 1);
                    XdrValue::Void
                }),
            },
        )
        .unwrap();
        for flow in 0..4u64 {
            sc.call_deferred_flow(&k, Domain::Nucleus, flow, "count", &[])
                .unwrap();
        }
        let parked_on_1 = sc.shard(1).pending_deferred();
        assert!(parked_on_1 > 0, "burst reached shard 1");
        // Shard 1's decaf end dies mid-burst; the facade requeues.
        let requeued = sc.recover_shard(&k, 1, Domain::Decaf).unwrap();
        assert_eq!(requeued, parked_on_1);
        sc.flush_all(&k).unwrap();
        assert_eq!(hits.get(), 4, "every deferred call applied exactly once");
        assert_eq!(sc.stats().faults, 0);
    }

    #[test]
    fn recover_shard_conserves_tokens_on_async_transport() {
        let sc = sharded_with(2, ShardPolicy::FlowHash, ChannelConfig::kernel_user_async());
        let k = Kernel::new();
        let hits = Rc::new(Cell::new(0u32));
        let h = Rc::clone(&hits);
        sc.register_proc(
            Domain::Decaf,
            ProcDef {
                name: "count".into(),
                arg_types: vec![],
                handler: Rc::new(move |_, _, _, _| {
                    h.set(h.get() + 1);
                    XdrValue::Void
                }),
            },
        )
        .unwrap();
        // A decaf-originated downcall registered at the nucleus end, so
        // fault recovery has something to cancel.
        sc.register_proc(
            Domain::Nucleus,
            ProcDef {
                name: "writel".into(),
                arg_types: vec![],
                handler: Rc::new(|_, _, _, _| XdrValue::Void),
            },
        )
        .unwrap();
        for flow in 0..4u64 {
            sc.call_deferred_flow(&k, Domain::Nucleus, flow, "count", &[])
                .unwrap();
        }
        sc.shard(1)
            .call_async(&k, Domain::Decaf, "writel", &[], &[])
            .unwrap();
        let parked_on_1 = sc.shard(1).pending_deferred();
        assert!(parked_on_1 > 0, "burst reached shard 1");
        // Shard 1's decaf end dies: its own call cancels, nucleus calls
        // requeue with their original tokens.
        let requeued = sc.recover_shard(&k, 1, Domain::Decaf).unwrap();
        assert!(requeued < parked_on_1, "the decaf call was not requeued");
        sc.flush_all(&k).unwrap();
        assert_eq!(sc.harvest_all(&k), 4, "all four surviving tokens resolve");
        assert_eq!(hits.get(), 4, "every surviving call applied exactly once");
        let s = sc.stats();
        assert_eq!(s.tokens_issued, s.tokens_harvested + s.tokens_cancelled);
        assert_eq!(s.tokens_cancelled, 1);
        assert_eq!(sc.tokens_outstanding(), 0);
        assert_eq!(sc.stats().faults, 0);
    }
}
