//! The sharded storage data path: N parallel [`UrbDataPath`]s riding a
//! [`ShardedChannel`], steered per LUN.
//!
//! [`crate::DataPathChannel`] scaled out in PR 3 by pairing a
//! [`decaf_shmring::RingSet`] with per-shard channels; this module is
//! the same move for the request/response storage path. A
//! [`ShardedUrbPath`] owns one [`UrbDataPath`] per shard, each bound to
//! its shard's [`crate::XpcChannel`] (own transport queue, own delta
//! maps) and to its shard's submit/giveback ring pair inside one
//! [`UrbRingSet`] — all over a single shared [`decaf_shmring::SectorPool`]
//! carved from the one device's DMA region.
//!
//! Steering is **per LUN**, not per URB: a storage transaction is a
//! FIFO sequence (stage command, then data transfer), so every URB of
//! one LUN must ride one shard's rings; distinct LUNs spread. The
//! completer gives finished descriptors back through
//! [`UrbRingSet::complete`], which steers each one home to the shard
//! that submitted it — per-shard conservation depends on it.
//!
//! Backpressure is staged per shard, exactly like the unsharded path: a
//! full submit ring or an exhausted pool forces that shard's doorbell
//! (so the completer drains and the pool refills) and reports
//! [`crate::XpcError::Backpressure`]; the caller reclaims givebacks and
//! retries. One saturated LUN never blocks its siblings' queues.
//!
//! Fault recovery composes with [`ShardedChannel::recover_shard`]: the
//! rings and the sector pool live in pinned shared memory, so a dead
//! decaf end loses neither parked requests nor in-flight runs —
//! [`ShardedUrbPath::recover_shard`] resets the failed end, requeues the
//! surviving deferred control calls, and re-rings the shard's doorbell
//! so parked submits drain on the fresh channel.

use std::cell::RefCell;
use std::rc::Rc;

use decaf_shmring::{DoorbellPolicy, UrbRingSet};
use decaf_simkernel::Kernel;

use crate::admission::{AdmissionController, AdmissionVerdict, TrafficClass};
use crate::domain::Domain;
use crate::error::{XpcError, XpcResult};
use crate::shard::ShardedChannel;
use crate::urbpath::{UrbDataPath, UrbPathStats, UrbReclaim};

/// N parallel URB data paths behind one facade, steered per LUN.
pub struct ShardedUrbPath {
    channels: Rc<ShardedChannel>,
    set: Rc<UrbRingSet>,
    paths: Vec<Rc<UrbDataPath>>,
    producer: Domain,
    admission: RefCell<Option<Rc<AdmissionController>>>,
}

impl ShardedUrbPath {
    /// Builds one [`UrbDataPath`] per shard over `set`'s ring pairs and
    /// shared pool, each riding its shard of `channels` and ringing
    /// `doorbell_proc` (which must be registered at the peer end of
    /// every shard). Each shard gets its own doorbell policy with
    /// `watermark` (coalescing state is per queue).
    ///
    /// Fails with [`XpcError::ShardConflict`] when the ring set and the
    /// channel facade disagree on the shard count — a mismatch would
    /// leave rings without a doorbell or doorbells without rings.
    pub fn new(
        channels: Rc<ShardedChannel>,
        producer: Domain,
        doorbell_proc: &str,
        set: Rc<UrbRingSet>,
        watermark: usize,
    ) -> XpcResult<Rc<Self>> {
        if channels.shard_count() != set.shards() {
            return Err(XpcError::ShardConflict(format!(
                "urb ring set has {} shards, channel facade {}",
                set.shards(),
                channels.shard_count()
            )));
        }
        let mut paths = Vec::with_capacity(set.shards());
        for i in 0..set.shards() {
            paths.push(UrbDataPath::new(
                Rc::clone(channels.shard(i)),
                producer,
                doorbell_proc,
                Rc::clone(set.submit_ring(i)),
                Rc::clone(set.giveback_ring(i)),
                Rc::clone(set.pool()),
                DoorbellPolicy::with_watermark(watermark),
            )?);
        }
        Ok(Rc::new(ShardedUrbPath {
            channels,
            set,
            paths,
            producer,
            admission: RefCell::new(None),
        }))
    }

    /// Installs (or removes, with `None`) an admission controller that
    /// rules on every submit before any ring capacity is consumed.
    ///
    /// A [`AdmissionVerdict::Reject`] verdict surfaces as
    /// [`XpcError::AdmissionReject`] — unlike staged backpressure the
    /// URB was never queued, so the caller retries later without
    /// reclaiming anything first. Descriptor rings are SPSC FIFO and
    /// cannot drop parked entries, so at this layer a
    /// [`AdmissionVerdict::Shed`] verdict degrades to admit; shedding
    /// belongs to software queues above the rings (the open-loop
    /// engine's dispatch queue executes it there).
    pub fn set_admission(&self, ctrl: Option<Rc<AdmissionController>>) {
        *self.admission.borrow_mut() = ctrl;
    }

    /// The installed admission controller, if any.
    pub fn admission(&self) -> Option<Rc<AdmissionController>> {
        self.admission.borrow().clone()
    }

    fn admit(&self, kernel: &Kernel, cookie: u64) -> XpcResult<()> {
        let guard = self.admission.borrow();
        let Some(ctrl) = guard.as_ref() else {
            return Ok(());
        };
        match ctrl.offer(kernel.now_ns(), TrafficClass::Storage, self.pending()) {
            AdmissionVerdict::Admit | AdmissionVerdict::Shed(_) => Ok(()),
            AdmissionVerdict::Reject => Err(XpcError::AdmissionReject(format!(
                "storage urb {cookie} refused at {} pending",
                self.pending()
            ))),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.paths.len()
    }

    /// The channel facade the doorbells ride.
    pub fn channels(&self) -> &Rc<ShardedChannel> {
        &self.channels
    }

    /// The underlying ring set (per-shard counters, origin map, pool).
    pub fn set(&self) -> &Rc<UrbRingSet> {
        &self.set
    }

    /// Shard `i`'s data path (the completer builds its
    /// [`crate::UrbEnd`] from here).
    pub fn path(&self, shard: usize) -> &Rc<UrbDataPath> {
        &self.paths[shard]
    }

    /// Maps a LUN to its shard (deterministic: one LUN's command and
    /// data URBs stay FIFO on one queue).
    pub fn steer(&self, lun: u64) -> usize {
        self.set.steer(lun)
    }

    /// Submits a host-to-device transfer on `lun`'s shard: the payload
    /// is adopted into the shared pool (zero-copy page donation), the
    /// request descriptor posted into that shard's submit ring, the
    /// origin recorded for completion steering, and the shard's doorbell
    /// rung if due — all charged to the shard via
    /// [`Kernel::shard_scope`]. Returns the shard used.
    ///
    /// On a full ring or an exhausted pool the shard's doorbell is
    /// forced and [`XpcError::Backpressure`] reported; the URB was *not*
    /// submitted (the origin record is unwound) — reclaim and retry.
    pub fn submit_out(
        &self,
        kernel: &Kernel,
        lun: u64,
        endpoint: u8,
        payload: &[u8],
        cookie: u64,
    ) -> XpcResult<usize> {
        self.admit(kernel, cookie)?;
        let shard = self.steer(lun);
        kernel.shard_scope(shard, || {
            kernel.trace_instant("shard", "steer", &[("shard", shard as u64), ("lun", lun)]);
            // Note first: a watermark doorbell inside submit_out runs
            // the completer synchronously, and it must already be able
            // to steer this URB's giveback home.
            self.set.note_submit(shard, cookie);
            match self.paths[shard].submit_out(kernel, endpoint, payload, cookie) {
                Ok(()) => Ok(shard),
                Err(e) => {
                    self.set.cancel_submit(cookie);
                    Err(e)
                }
            }
        })
    }

    /// Submits a device-to-host transfer on `lun`'s shard: an empty run
    /// of `expected_len` bytes for the device to fill; the giveback
    /// hands the run back with the actual length. Returns the shard
    /// used; errors behave like [`ShardedUrbPath::submit_out`].
    pub fn submit_in(
        &self,
        kernel: &Kernel,
        lun: u64,
        endpoint: u8,
        expected_len: usize,
        cookie: u64,
    ) -> XpcResult<usize> {
        self.admit(kernel, cookie)?;
        let shard = self.steer(lun);
        kernel.shard_scope(shard, || {
            kernel.trace_instant("shard", "steer", &[("shard", shard as u64), ("lun", lun)]);
            self.set.note_submit(shard, cookie);
            match self.paths[shard].submit_in(kernel, endpoint, expected_len, cookie) {
                Ok(()) => Ok(shard),
                Err(e) => {
                    self.set.cancel_submit(cookie);
                    Err(e)
                }
            }
        })
    }

    /// Drains one shard's giveback ring under its cost scope.
    pub fn reclaim_shard(&self, kernel: &Kernel, shard: usize) -> Vec<UrbReclaim> {
        kernel.shard_scope(shard, || self.paths[shard].reclaim(kernel))
    }

    /// Drains every shard's giveback ring (shard order; givebacks within
    /// a shard stay FIFO).
    pub fn reclaim(&self, kernel: &Kernel) -> Vec<UrbReclaim> {
        let mut out = Vec::new();
        for shard in 0..self.paths.len() {
            out.extend(self.reclaim_shard(kernel, shard));
        }
        out
    }

    /// Polls every shard's coalescing deadline; returns how many shards
    /// rang. A due shard never waits for traffic on its siblings, and a
    /// shard whose doorbell errors does not starve the ones after it
    /// (the first error is reported once the sweep completes).
    pub fn poll(&self, kernel: &Kernel) -> XpcResult<usize> {
        let mut rang = 0;
        let mut first_err = None;
        for (i, path) in self.paths.iter().enumerate() {
            match kernel.shard_scope(i, || path.poll(kernel)) {
                Ok(true) => rang += 1,
                Ok(false) => {}
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(rang),
        }
    }

    /// Requests posted and not yet drained, across all shards.
    pub fn pending(&self) -> usize {
        self.paths.iter().map(|p| p.pending()).sum()
    }

    /// URBs submitted and not yet given back, across all shards.
    pub fn in_flight(&self) -> u64 {
        self.paths.iter().map(|p| p.in_flight()).sum()
    }

    /// Merged path counters: sums across shards, max for the high-water
    /// mark.
    pub fn stats(&self) -> UrbPathStats {
        let mut total = UrbPathStats::default();
        for p in &self.paths {
            let s = p.stats();
            total.submitted += s.submitted;
            total.given_back += s.given_back;
            total.in_flight_hwm = total.in_flight_hwm.max(s.in_flight_hwm);
        }
        total
    }

    /// The conservation invariant, both layers: every per-shard path
    /// conserves its URBs, and the ring set's per-shard counters (which
    /// additionally check completion *affinity*) conserve too.
    pub fn conserved(&self) -> bool {
        self.paths.iter().all(|p| p.conserved()) && self.set.conserved()
    }

    /// Recovers shard `shard` after its `failed` end died mid-burst:
    /// delegates to [`ShardedChannel::recover_shard`] (parked deferred
    /// control calls requeue, the failed end resets, later transfers
    /// marshal in full), then re-rings the shard's doorbell — requests
    /// parked in the submit ring and runs held by the sector pool live
    /// in pinned shared memory and survive the fault, so the fresh
    /// completer drains them where the dead one stopped. Returns the
    /// number of requeued deferred calls.
    pub fn recover_shard(&self, kernel: &Kernel, shard: usize, failed: Domain) -> XpcResult<usize> {
        if failed == self.producer {
            return Err(XpcError::ShardConflict(format!(
                "recover_shard: {failed:?} is the submitter side; \
                 only the completer end can be recovered"
            )));
        }
        let requeued = self.channels.recover_shard(kernel, shard, failed)?;
        kernel.shard_scope(shard, || self.paths[shard].ring_doorbell(kernel))?;
        Ok(requeued)
    }
}

impl std::fmt::Debug for ShardedUrbPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedUrbPath")
            .field("shards", &self.paths.len())
            .field("producer", &self.producer)
            .field("pending", &self.pending())
            .field("in_flight", &self.in_flight())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::{ChannelConfig, ProcDef};
    use crate::shard::ShardPolicy;
    use decaf_shmring::{SectorPool, XferDir};
    use decaf_simkernel::CpuClass;
    use decaf_xdr::mask::MaskSet;
    use decaf_xdr::{XdrSpec, XdrValue};

    fn facade(shards: usize) -> Rc<ShardedChannel> {
        ShardedChannel::new(
            XdrSpec::parse("struct unused { int x; };").unwrap(),
            MaskSet::full(),
            ChannelConfig::kernel_user_shmring(),
            Domain::Nucleus,
            Domain::Decaf,
            shards,
            ShardPolicy::FlowHash,
        )
    }

    /// Registers a per-shard completer that echoes OUT lengths, "reads"
    /// 100 bytes for IN requests, and gives back through the *set* so
    /// completions steer home.
    fn register_drains(sc: &Rc<ShardedChannel>, path: &Rc<ShardedUrbPath>) {
        for i in 0..sc.shard_count() {
            let end = path.path(i).end(Domain::Decaf);
            let set = Rc::clone(path.set());
            sc.shard(i)
                .register_proc(
                    Domain::Decaf,
                    ProcDef {
                        name: "urb_drain".into(),
                        arg_types: vec![],
                        handler: Rc::new(move |k, _, _, _| {
                            for d in end.consume(k) {
                                let actual = match d.dir {
                                    XferDir::Out => d.len,
                                    XferDir::In => 100,
                                };
                                set.complete(k, CpuClass::User, d.completed(0, actual))
                                    .unwrap();
                            }
                            XdrValue::Void
                        }),
                    },
                )
                .unwrap();
        }
    }

    fn sharded(
        shards: usize,
        sectors: usize,
        depth: usize,
        watermark: usize,
    ) -> (Kernel, Rc<ShardedChannel>, Rc<ShardedUrbPath>) {
        let k = Kernel::new();
        let sc = facade(shards);
        let set = UrbRingSet::new(
            "urb",
            shards,
            depth,
            2 * depth,
            Rc::new(SectorPool::with_capacity(512, sectors)),
        );
        let path =
            ShardedUrbPath::new(Rc::clone(&sc), Domain::Nucleus, "urb_drain", set, watermark)
                .unwrap();
        register_drains(&sc, &path);
        (k, sc, path)
    }

    #[test]
    fn shard_count_mismatch_is_refused() {
        let sc = facade(2);
        let set = UrbRingSet::new("urb", 3, 8, 16, Rc::new(SectorPool::with_capacity(512, 8)));
        let err = ShardedUrbPath::new(sc, Domain::Nucleus, "urb_drain", set, 4).unwrap_err();
        assert!(matches!(err, XpcError::ShardConflict(_)), "{err}");
    }

    #[test]
    fn luns_spread_and_completions_come_home() {
        let (k, _sc, path) = sharded(4, 64, 16, 4);
        let mut used = [false; 4];
        for cookie in 0..32u64 {
            let lun = cookie % 8;
            let shard = path
                .submit_out(&k, lun, 2, &[lun as u8; 517], cookie)
                .unwrap();
            assert_eq!(shard, path.steer(lun), "steering is by LUN");
            used[shard] = true;
        }
        let done = path.reclaim(&k);
        // Sub-watermark tails may still be parked; flush them.
        path.poll(&k).unwrap();
        k.run_for(2 * decaf_simkernel::costs::DOORBELL_COALESCE_NS);
        path.poll(&k).unwrap();
        let done = done.len() + path.reclaim(&k).len();
        assert_eq!(done, 32, "every URB completed");
        assert!(used.iter().filter(|&&u| u).count() >= 2, "LUNs spread");
        assert!(path.conserved());
        assert_eq!(path.set().pool().in_use_sectors(), 0, "all runs home");
        assert_eq!(
            k.stats().bytes_copied,
            0,
            "payloads are adopted, never copied"
        );
        // Per-shard work was charged to per-shard scopes.
        let busy = k.shard_busy_ns();
        assert!(busy.iter().filter(|&&ns| ns > 0).count() >= 2, "{busy:?}");
    }

    #[test]
    fn one_lun_stays_fifo_on_one_shard() {
        let (k, _sc, path) = sharded(3, 64, 16, 2);
        for cookie in 0..6u64 {
            path.submit_out(&k, 5, 2, &[1; 64], cookie).unwrap();
        }
        k.run_for(2 * decaf_simkernel::costs::DOORBELL_COALESCE_NS);
        path.poll(&k).unwrap();
        let done = path.reclaim(&k);
        assert_eq!(done.len(), 6);
        let cookies: Vec<u64> = done.iter().map(|r| r.cookie).collect();
        assert_eq!(cookies, (0..6).collect::<Vec<_>>(), "FIFO within the LUN");
        let shard = path.steer(5);
        assert_eq!(path.set().shard_stats(shard).submitted, 6);
        for other in (0..3).filter(|&s| s != shard) {
            assert_eq!(path.set().shard_stats(other).submitted, 0);
        }
    }

    #[test]
    fn in_completions_hand_ownership_back_per_shard() {
        let (k, _sc, path) = sharded(2, 16, 8, 1);
        path.submit_in(&k, 0, 1, 512, 7).unwrap();
        path.submit_in(&k, 1, 1, 512, 8).unwrap();
        let done = path.reclaim(&k);
        assert_eq!(done.len(), 2);
        for r in &done {
            assert_eq!(r.actual, 100, "short read reports the true length");
            assert_eq!(r.data.len(), 100);
        }
        assert_eq!(k.stats().bytes_copied, 0, "handback is in place");
        assert!(path.conserved());
    }

    #[test]
    fn full_shard_ring_backpressures_that_shard_only() {
        // Shallow rings, watermark above the depth: one LUN can fill its
        // shard's ring while the sibling shard stays writable.
        let (k, _sc, path) = sharded(2, 64, 2, 64);
        let lun = 0u64;
        let shard = path.steer(lun);
        let sibling_lun = (1..64)
            .find(|&l| path.steer(l) != shard)
            .expect("some LUN maps to the other shard");
        path.submit_out(&k, lun, 2, &[1; 64], 0).unwrap();
        path.submit_out(&k, lun, 2, &[1; 64], 1).unwrap();
        // Ring full: staged backpressure (forced doorbell + error)…
        let err = path.submit_out(&k, lun, 2, &[1; 64], 2).unwrap_err();
        assert!(matches!(err, XpcError::Backpressure(_)), "{err}");
        // …while the sibling shard still accepts.
        path.submit_out(&k, sibling_lun, 2, &[2; 64], 3).unwrap();
        // The forced doorbell drained the full shard; reclaim + retry.
        assert_eq!(path.reclaim_shard(&k, shard,).len(), 2);
        path.submit_out(&k, lun, 2, &[1; 64], 2).unwrap();
        path.poll(&k).unwrap();
        k.run_for(2 * decaf_simkernel::costs::DOORBELL_COALESCE_NS);
        path.poll(&k).unwrap();
        assert_eq!(path.reclaim(&k).len(), 2);
        assert!(path.conserved());
        assert_eq!(path.set().pool().in_use_sectors(), 0);
    }

    #[test]
    fn exhausted_pool_backpressures_then_recovers() {
        // Two sectors total, shared by both shards: the pool, not the
        // ring, is the bottleneck.
        let (k, _sc, path) = sharded(2, 2, 8, 64);
        path.submit_out(&k, 0, 2, &[1; 512], 0).unwrap();
        path.submit_out(&k, 1, 2, &[1; 512], 1).unwrap();
        let err = path.submit_out(&k, 0, 2, &[1; 512], 2).unwrap_err();
        assert!(matches!(err, XpcError::Backpressure(_)), "{err}");
        assert_eq!(path.reclaim(&k).len(), 2, "forced doorbell drained");
        path.submit_out(&k, 0, 2, &[1; 512], 2).unwrap();
        path.poll(&k).unwrap();
        k.run_for(2 * decaf_simkernel::costs::DOORBELL_COALESCE_NS);
        path.poll(&k).unwrap();
        assert_eq!(path.reclaim(&k).len(), 1);
        assert!(path.conserved());
        assert_eq!(path.set().stats().submitted, 3);
        assert_eq!(path.set().pool().stats().exhausted, 1);
    }

    #[test]
    fn recover_shard_redrains_parked_submits_on_the_fresh_channel() {
        let (k, sc, path) = sharded(2, 64, 8, 64);
        let lun = 0u64;
        let shard = path.steer(lun);
        // Park two requests below the watermark (no doorbell yet), then
        // the shard's decaf end dies.
        path.submit_out(&k, lun, 2, &[7; 64], 0).unwrap();
        path.submit_out(&k, lun, 2, &[7; 64], 1).unwrap();
        assert_eq!(path.pending(), 2);
        let requeued = path.recover_shard(&k, shard, Domain::Decaf).unwrap();
        assert_eq!(requeued, 0, "no deferred control calls were parked");
        // The recovery doorbell re-drained the pinned submit ring.
        let done = path.reclaim_shard(&k, shard);
        assert_eq!(done.len(), 2, "parked URBs survive the fault");
        assert!(done.iter().all(|r| r.ok()));
        assert!(path.conserved());
        assert_eq!(path.set().pool().in_use_sectors(), 0);
        assert_eq!(sc.heap(shard, Domain::Decaf).borrow().len(), 0, "end reset");
        // Recovering the submitter side is refused, not silently wrong.
        let err = path.recover_shard(&k, shard, Domain::Nucleus).unwrap_err();
        assert!(matches!(err, XpcError::ShardConflict(_)));
    }

    #[test]
    fn admission_hook_refuses_before_any_capacity_is_spent() {
        use crate::admission::{AdmissionPolicy, TokenBucket};

        let (k, _sc, path) = sharded(2, 64, 16, 4);
        let ctrl = Rc::new(
            AdmissionController::new(AdmissionPolicy::RejectAtAdmission, 8).with_bucket(
                crate::admission::TrafficClass::Storage,
                TokenBucket::new(1_000, 2),
            ),
        );
        path.set_admission(Some(Rc::clone(&ctrl)));
        // The burst admits two URBs; the third is refused at the door —
        // no origin record, no ring slot, no pool sector was touched.
        path.submit_out(&k, 0, 2, &[1; 64], 0).unwrap();
        path.submit_out(&k, 1, 2, &[1; 64], 1).unwrap();
        let before = path.set().stats().submitted;
        let err = path.submit_out(&k, 0, 2, &[1; 64], 2).unwrap_err();
        assert!(matches!(err, XpcError::AdmissionReject(_)), "{err}");
        assert_eq!(path.set().stats().submitted, before, "nothing was queued");
        // Virtual time refills the bucket and the retry goes through.
        k.run_for(1_000_001);
        path.submit_out(&k, 0, 2, &[1; 64], 2).unwrap();
        k.run_for(2 * decaf_simkernel::costs::DOORBELL_COALESCE_NS);
        path.poll(&k).unwrap();
        assert_eq!(path.reclaim(&k).len(), 3);
        let s = ctrl.stats(crate::admission::TrafficClass::Storage);
        assert_eq!((s.offered, s.admitted, s.rejected), (4, 3, 1));
        assert!(ctrl.balanced());
        assert!(path.conserved(), "rejects never unbalance the rings");
        // Removing the controller restores unconditional admission.
        path.set_admission(None);
        path.submit_out(&k, 0, 2, &[1; 64], 3).unwrap();
        assert_eq!(
            ctrl.total().offered,
            4,
            "uninstalled controller sees nothing"
        );
    }
}
