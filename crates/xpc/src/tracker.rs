//! The object tracker: shared-object identity across domains.
//!
//! "Decaf Drivers XPC uses an object tracker that records each shared
//! object, extended to support two user-level domains. When transferring
//! objects into a domain, XPC consults the object tracker to find whether
//! the object already exists" (paper §2.3). Two C-vs-Java representation
//! problems drive the design (§3.1.2):
//!
//! * Java objects have no address, so the user-level tracker keys objects
//!   by reference — here, by the local heap address standing in for one.
//! * One C pointer may correspond to several objects (a struct embedded
//!   first in another shares its address), so every association carries a
//!   *type tag*; the paper uses the address of the type's XDR marshaling
//!   function, we use the type name.

use std::collections::HashMap;

use decaf_xdr::graph::CAddr;
use decaf_xdr::TrackerHook;

/// Counters describing tracker behaviour (used by tests and benches).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TrackerStats {
    /// Lookups that found an existing association.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Associations recorded.
    pub associations: u64,
    /// Associations removed.
    pub releases: u64,
}

/// A per-domain object tracker mapping peer (canonical) addresses to local
/// objects, disambiguated by type tag.
#[derive(Debug, Default)]
pub struct ObjectTracker {
    by_remote: HashMap<(CAddr, String), CAddr>,
    by_local: HashMap<CAddr, (CAddr, String)>,
    stats: TrackerStats,
}

impl ObjectTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        ObjectTracker::default()
    }

    /// Number of live associations.
    pub fn len(&self) -> usize {
        self.by_remote.len()
    }

    /// Whether the tracker holds no associations.
    pub fn is_empty(&self) -> bool {
        self.by_remote.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> TrackerStats {
        self.stats
    }

    /// The canonical (peer) address a local object corresponds to, if the
    /// object originated elsewhere.
    ///
    /// Used by the sending stub to "translate any parameters to their
    /// equivalent C pointers" (paper §3.1.1).
    pub fn canonical_for(&self, local: CAddr) -> Option<CAddr> {
        self.by_local.get(&local).map(|(remote, _)| *remote)
    }

    /// Removes the association for a local object (explicit free; the
    /// paper's decaf drivers release shared objects explicitly, §3.1.2).
    ///
    /// Returns the canonical address that was associated, if any.
    pub fn release_local(&mut self, local: CAddr) -> Option<CAddr> {
        let (remote, tag) = self.by_local.remove(&local)?;
        self.by_remote.remove(&(remote, tag));
        self.stats.releases += 1;
        Some(remote)
    }

    /// Removes the association for a remote object of a given type.
    pub fn release_remote(&mut self, remote: CAddr, type_tag: &str) -> Option<CAddr> {
        let local = self.by_remote.remove(&(remote, type_tag.to_string()))?;
        self.by_local.remove(&local);
        self.stats.releases += 1;
        Some(local)
    }

    /// All associations as `(remote, type, local)` triples (test helper).
    pub fn associations(&self) -> Vec<(CAddr, String, CAddr)> {
        let mut v: Vec<_> = self
            .by_remote
            .iter()
            .map(|((r, t), l)| (*r, t.clone(), *l))
            .collect();
        v.sort();
        v
    }
}

impl TrackerHook for ObjectTracker {
    fn lookup(&mut self, remote: CAddr, type_name: &str) -> Option<CAddr> {
        match self.by_remote.get(&(remote, type_name.to_string())) {
            Some(local) => {
                self.stats.hits += 1;
                Some(*local)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    fn associate(&mut self, remote: CAddr, type_name: &str, local: CAddr) {
        self.by_remote
            .insert((remote, type_name.to_string()), local);
        self.by_local.insert(local, (remote, type_name.to_string()));
        self.stats.associations += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_miss_then_hit() {
        let mut t = ObjectTracker::new();
        assert_eq!(t.lookup(0x1000, "e1000_adapter"), None);
        t.associate(0x1000, "e1000_adapter", 0x8000_0000);
        assert_eq!(t.lookup(0x1000, "e1000_adapter"), Some(0x8000_0000));
        let s = t.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 1);
        assert_eq!(s.associations, 1);
    }

    #[test]
    fn embedded_structs_disambiguated_by_type_tag() {
        // A struct embedded first in another shares its C address; the
        // type tag keeps the two associations apart (paper §3.1.2).
        let mut t = ObjectTracker::new();
        t.associate(0x2000, "outer", 0x8000_0000);
        t.associate(0x2000, "inner", 0x8000_0100);
        assert_eq!(t.lookup(0x2000, "outer"), Some(0x8000_0000));
        assert_eq!(t.lookup(0x2000, "inner"), Some(0x8000_0100));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn canonical_reverse_lookup() {
        let mut t = ObjectTracker::new();
        t.associate(0x3000, "ring", 0x8000_0000);
        assert_eq!(t.canonical_for(0x8000_0000), Some(0x3000));
        assert_eq!(t.canonical_for(0x9999), None);
    }

    #[test]
    fn release_removes_both_directions() {
        let mut t = ObjectTracker::new();
        t.associate(0x3000, "ring", 0x8000_0000);
        assert_eq!(t.release_local(0x8000_0000), Some(0x3000));
        assert_eq!(t.lookup(0x3000, "ring"), None);
        assert_eq!(t.canonical_for(0x8000_0000), None);
        assert!(t.is_empty());
        assert_eq!(t.stats().releases, 1);
    }

    #[test]
    fn release_remote_by_type() {
        let mut t = ObjectTracker::new();
        t.associate(0x2000, "outer", 0x8000_0000);
        t.associate(0x2000, "inner", 0x8000_0100);
        assert_eq!(t.release_remote(0x2000, "outer"), Some(0x8000_0000));
        assert_eq!(t.lookup(0x2000, "inner"), Some(0x8000_0100));
        assert_eq!(t.len(), 1);
    }
}
