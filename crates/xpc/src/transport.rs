//! Pluggable control-transfer mechanisms.
//!
//! The paper's XPC hard-wires one policy: reuse the calling thread for
//! co-located domains (§2.3), schedule a dedicated thread otherwise. This
//! module turns that choice into a [`Transport`] trait the channel's stub
//! layer consults for every crossing, with four implementations:
//!
//! * [`InProc`] — thread reuse, the paper's optimization;
//! * [`Threaded`] — dedicated-thread handoff, the unoptimized baseline;
//! * [`Batched`] — thread reuse **plus** a deferred-call queue: calls
//!   whose results nobody reads are parked in a shared ring and flushed
//!   through the boundary in a single crossing (the doorbell pattern —
//!   the same lever "The Case for Writing Network Drivers in High-Level
//!   Programming Languages" identifies as what lets high-level drivers
//!   match C throughput);
//! * [`Async`] — completion-based batching: every deferred call is
//!   issued a [`CompletionToken`], the queue launches through the
//!   boundary when its doorbell fires (watermark or virtual-time
//!   deadline, [`DoorbellPolicy`] semantics), and the stub layer
//!   harvests completions later — charging only the portion of each
//!   crossing that no computation covered.
//!
//! The trait is the seam later scaling work builds on: the stub layer
//! never knows which policy is behind it.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;

use decaf_shmring::DoorbellPolicy;
use decaf_simkernel::{costs, CpuClass, Kernel};
use decaf_xdr::graph::CAddr;
use decaf_xdr::XdrValue;

use crate::domain::Domain;

/// Transport selector carried by `ChannelConfig` (the config stays
/// `Copy`; the channel instantiates the matching [`Transport`] object).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// Reuse the calling thread (paper §2.3).
    InProc,
    /// Hand off to a dedicated thread in the target domain.
    Threaded,
    /// Thread reuse plus deferred-call batching with delta-friendly
    /// flushes.
    Batched,
    /// Completion-based batching: deferred calls return
    /// [`CompletionToken`]s, flushes *launch* the crossing instead of
    /// blocking on it, and the stub layer harvests completions later.
    Async,
}

/// Deferred calls queued beyond this point force a flush.
pub const DEFAULT_BATCH_CAPACITY: usize = 16;

/// Virtual-time deadline after which a batched transport flushes even a
/// partial queue (adaptive batching): low-rate control paths must not
/// hold posted writes for long. Matches the shmring doorbell-coalescing
/// window — both are the same "amortize or bound the latency" decision.
pub const DEFAULT_BATCH_DEADLINE_NS: u64 = costs::DOORBELL_COALESCE_NS;

/// Names one in-flight asynchronous call on a completion-based
/// transport. Issued at `offer` time, resolved exactly once — harvested
/// after its launch crossing completes, or cancelled when fault
/// recovery drops the call before it ever launched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CompletionToken(pub u64);

/// A call parked in a queueing transport: executed at the next flush,
/// result discarded (only result-free calls should be deferred).
#[derive(Debug, Clone)]
pub struct DeferredCall {
    /// Calling domain.
    pub from: Domain,
    /// Target procedure name.
    pub proc: String,
    /// Object arguments (caller-heap addresses).
    pub args: Vec<Option<CAddr>>,
    /// By-value scalar arguments.
    pub scalars: Vec<XdrValue>,
    /// Completion token, on a completion-based transport. Travels with
    /// the call through fault-recovery requeues so a recovered call is
    /// never double-issued.
    pub token: Option<CompletionToken>,
}

/// A control-transfer mechanism. The stub layer asks it to price each
/// one-way crossing and offers it calls for deferral.
///
/// `pending`, `flush_due` and `retain` are deliberately *required*:
/// an earlier version gave them silent no-op defaults, which let a
/// queueing transport compile while reporting an always-empty queue —
/// flushes then never fired and `drain` quietly returned calls the
/// channel believed did not exist.
pub trait Transport {
    /// Which selector built this transport.
    fn kind(&self) -> TransportKind;

    /// Human-readable name for stats and docs.
    fn name(&self) -> &'static str;

    /// The virtual-time latency of one one-way control transfer — the
    /// portion a completion-based transport may *launch* (and later
    /// charge net of overlap) instead of blocking on.
    fn crossing_cost_ns(&self, domain_crossing: bool) -> u64;

    /// Charges the virtual-time cost of one one-way control transfer
    /// initiated by `class`.
    ///
    /// This default is the one instrumentation point covering all four
    /// transport kinds: every synchronous crossing emits a per-transport
    /// `xpc.crossing` trace instant named after [`Transport::name`].
    fn charge_crossing(&self, kernel: &Kernel, class: CpuClass, domain_crossing: bool) {
        let cost = self.crossing_cost_ns(domain_crossing);
        kernel.charge(class, cost);
        kernel.trace_instant(
            "xpc.crossing",
            self.name(),
            &[("cost_ns", cost), ("domain", domain_crossing as u64)],
        );
    }

    /// Offers a call for deferral. A transport that does not batch hands
    /// the call back (`Err`) and the channel executes it synchronously.
    /// A completion-based transport returns the call's token (minting
    /// one if the call does not already carry it); a plain batching
    /// transport queues the call and returns `Ok(None)`.
    fn offer(
        &self,
        kernel: &Kernel,
        class: CpuClass,
        call: DeferredCall,
    ) -> Result<Option<CompletionToken>, DeferredCall>;

    /// Drains every queued call, oldest first.
    fn drain(&self) -> Vec<DeferredCall>;

    /// Number of calls currently queued.
    fn pending(&self) -> usize;

    /// Whether the queue must flush now: it reached capacity, or its
    /// oldest deferred call has waited past the transport's virtual-time
    /// deadline (adaptive batching).
    fn flush_due(&self, kernel: &Kernel) -> bool;

    /// Drops queued calls not matching `keep` (fault-recovery hygiene),
    /// returning the completion tokens of the dropped calls so the stub
    /// layer can account them as cancelled.
    fn retain(&self, keep: &dyn Fn(&DeferredCall) -> bool) -> Vec<CompletionToken>;

    /// Virtual time at which the oldest queued call was deferred, or
    /// `None` when nothing is queued (always `None` on a non-queueing
    /// transport). The stub layer's deadline-wakeup timer arms from this
    /// so a parked batch flushes *at* its deadline even if no further
    /// call or post ever arrives to evaluate [`Transport::flush_due`].
    fn oldest_deferred_at(&self) -> Option<u64>;
}

/// Builds the transport object for a selector. `capacity` and
/// `deadline_ns` configure the queueing transports' flush watermark and
/// adaptive-batching deadline; the non-queueing transports ignore them.
pub fn build(kind: TransportKind, capacity: usize, deadline_ns: u64) -> Box<dyn Transport> {
    match kind {
        TransportKind::InProc => Box::new(InProc),
        TransportKind::Threaded => Box::new(Threaded),
        TransportKind::Batched => Box::new(Batched::with_deadline(capacity, deadline_ns)),
        TransportKind::Async => Box::new(Async::new(capacity, deadline_ns)),
    }
}

/// Thread-reuse transport: the calling thread continues in the target
/// domain, paying only the protection-boundary switch.
#[derive(Debug, Default, Clone, Copy)]
pub struct InProc;

impl Transport for InProc {
    fn kind(&self) -> TransportKind {
        TransportKind::InProc
    }
    fn name(&self) -> &'static str {
        "inproc"
    }
    fn crossing_cost_ns(&self, domain_crossing: bool) -> u64 {
        if domain_crossing {
            costs::DOMAIN_CROSSING_NS
        } else {
            0
        }
    }
    fn offer(
        &self,
        _kernel: &Kernel,
        _class: CpuClass,
        call: DeferredCall,
    ) -> Result<Option<CompletionToken>, DeferredCall> {
        Err(call)
    }
    fn drain(&self) -> Vec<DeferredCall> {
        Vec::new()
    }
    fn pending(&self) -> usize {
        0
    }
    fn flush_due(&self, _kernel: &Kernel) -> bool {
        false
    }
    fn retain(&self, _keep: &dyn Fn(&DeferredCall) -> bool) -> Vec<CompletionToken> {
        Vec::new()
    }
    fn oldest_deferred_at(&self) -> Option<u64> {
        None
    }
}

/// Dedicated-thread transport: every crossing additionally pays a
/// scheduler round trip to wake the target domain's service thread.
#[derive(Debug, Default, Clone, Copy)]
pub struct Threaded;

impl Transport for Threaded {
    fn kind(&self) -> TransportKind {
        TransportKind::Threaded
    }
    fn name(&self) -> &'static str {
        "threaded"
    }
    fn crossing_cost_ns(&self, domain_crossing: bool) -> u64 {
        let base = if domain_crossing {
            costs::DOMAIN_CROSSING_NS
        } else {
            0
        };
        base + costs::THREAD_HANDOFF_NS
    }
    fn offer(
        &self,
        _kernel: &Kernel,
        _class: CpuClass,
        call: DeferredCall,
    ) -> Result<Option<CompletionToken>, DeferredCall> {
        Err(call)
    }
    fn drain(&self) -> Vec<DeferredCall> {
        Vec::new()
    }
    fn pending(&self) -> usize {
        0
    }
    fn flush_due(&self, _kernel: &Kernel) -> bool {
        false
    }
    fn retain(&self, _keep: &dyn Fn(&DeferredCall) -> bool) -> Vec<CompletionToken> {
        Vec::new()
    }
    fn oldest_deferred_at(&self) -> Option<u64> {
        None
    }
}

/// Batching transport: deferred calls accumulate in a shared ring and a
/// whole batch crosses the boundary on one doorbell.
///
/// Flushes are due at *capacity* (the batch is worth a crossing) or at a
/// virtual-time *deadline* measured from the oldest queued call (a
/// low-rate path must not hold a posted write indefinitely) — the same
/// watermark/deadline decision a shmring [`DoorbellPolicy`] makes for
/// parked descriptors, with the queue capacity as the watermark.
///
/// The deadline is anchored *per call*: each deferred call carries its
/// own defer timestamp and `flush_due` measures from the oldest call
/// still queued. An earlier implementation kept one shared armed-at
/// timestamp that survived `retain` (the fault-recovery drop path), so
/// after a queue drained at the watermark boundary the next batch's
/// deadline could be measured from a call that no longer existed —
/// firing a coalescing window early or late depending on which side of
/// the boundary the drop landed. The regression tests below pin the
/// exact anchoring.
#[derive(Debug)]
pub struct Batched {
    /// `(deferred_at_ns, call)` in arrival order.
    queue: RefCell<VecDeque<(u64, DeferredCall)>>,
    capacity: usize,
    deadline_ns: u64,
}

impl Batched {
    /// A batched transport flushing after `capacity` queued calls or
    /// [`DEFAULT_BATCH_DEADLINE_NS`] of virtual time, whichever first.
    pub fn new(capacity: usize) -> Self {
        Batched::with_deadline(capacity, DEFAULT_BATCH_DEADLINE_NS)
    }

    /// A batched transport with an explicit flush deadline.
    pub fn with_deadline(capacity: usize, deadline_ns: u64) -> Self {
        Batched {
            queue: RefCell::new(VecDeque::new()),
            capacity: capacity.max(1),
            deadline_ns,
        }
    }
}

impl Transport for Batched {
    fn kind(&self) -> TransportKind {
        TransportKind::Batched
    }
    fn name(&self) -> &'static str {
        "batched"
    }
    fn crossing_cost_ns(&self, domain_crossing: bool) -> u64 {
        let base = if domain_crossing {
            costs::DOMAIN_CROSSING_NS
        } else {
            0
        };
        base + costs::BATCH_DOORBELL_NS
    }
    fn offer(
        &self,
        kernel: &Kernel,
        class: CpuClass,
        call: DeferredCall,
    ) -> Result<Option<CompletionToken>, DeferredCall> {
        kernel.charge(class, costs::BATCH_ENQUEUE_NS);
        self.queue.borrow_mut().push_back((kernel.now_ns(), call));
        Ok(None)
    }
    fn drain(&self) -> Vec<DeferredCall> {
        self.queue.borrow_mut().drain(..).map(|(_, c)| c).collect()
    }
    fn pending(&self) -> usize {
        self.queue.borrow().len()
    }
    fn flush_due(&self, kernel: &Kernel) -> bool {
        let queue = self.queue.borrow();
        match queue.front() {
            None => false,
            Some((oldest_at, _)) => {
                queue.len() >= self.capacity
                    || kernel.now_ns().saturating_sub(*oldest_at) >= self.deadline_ns
            }
        }
    }
    fn retain(&self, keep: &dyn Fn(&DeferredCall) -> bool) -> Vec<CompletionToken> {
        let mut dropped = Vec::new();
        self.queue.borrow_mut().retain(|(_, c)| {
            let keep_it = keep(c);
            if !keep_it {
                dropped.extend(c.token);
            }
            keep_it
        });
        dropped
    }
    fn oldest_deferred_at(&self) -> Option<u64> {
        self.queue.borrow().front().map(|(at, _)| *at)
    }
}

/// Completion-based batching transport: [`Batched`]'s queue with tokens.
///
/// Every offered call is issued a [`CompletionToken`] (or keeps the one
/// it already carries, on a fault-recovery requeue). The flush decision
/// reuses [`DoorbellPolicy`] semantics directly — arm on the first
/// post, fire at the watermark occupancy (`capacity`) or once the
/// armed-at timestamp has waited out the deadline — and `retain`
/// re-anchors the policy to the oldest *surviving* call, preserving the
/// per-call-anchoring guarantee the [`Batched`] regression tests pin.
///
/// What makes it asynchronous is not the queue but what the stub layer
/// does at flush time: on this transport a flush *launches* the
/// boundary crossing — handlers run, data lands, but the crossing's
/// latency is banked against the batch's tokens and charged at harvest
/// time net of whatever computation overlapped it.
#[derive(Debug)]
pub struct Async {
    /// `(deferred_at_ns, call)` in arrival order.
    queue: RefCell<VecDeque<(u64, DeferredCall)>>,
    policy: DoorbellPolicy,
    next_token: Cell<u64>,
}

impl Async {
    /// A completion-based transport launching after `capacity` queued
    /// calls or `deadline_ns` of virtual time, whichever first.
    pub fn new(capacity: usize, deadline_ns: u64) -> Self {
        Async {
            queue: RefCell::new(VecDeque::new()),
            policy: DoorbellPolicy::new(capacity, deadline_ns),
            next_token: Cell::new(1),
        }
    }
}

impl Transport for Async {
    fn kind(&self) -> TransportKind {
        TransportKind::Async
    }
    fn name(&self) -> &'static str {
        "async"
    }
    fn crossing_cost_ns(&self, domain_crossing: bool) -> u64 {
        // A synchronous crossing on this transport prices like Batched:
        // the asymmetry is *when* the cost lands, not how big it is.
        let base = if domain_crossing {
            costs::DOMAIN_CROSSING_NS
        } else {
            0
        };
        base + costs::BATCH_DOORBELL_NS
    }
    fn offer(
        &self,
        kernel: &Kernel,
        class: CpuClass,
        mut call: DeferredCall,
    ) -> Result<Option<CompletionToken>, DeferredCall> {
        kernel.charge(class, costs::BATCH_ENQUEUE_NS);
        let token = *call.token.get_or_insert_with(|| {
            let t = CompletionToken(self.next_token.get());
            self.next_token.set(t.0 + 1);
            t
        });
        self.policy.note_post(kernel.now_ns());
        self.queue.borrow_mut().push_back((kernel.now_ns(), call));
        Ok(Some(token))
    }
    fn drain(&self) -> Vec<DeferredCall> {
        self.policy.rang();
        self.queue.borrow_mut().drain(..).map(|(_, c)| c).collect()
    }
    fn pending(&self) -> usize {
        self.queue.borrow().len()
    }
    fn flush_due(&self, kernel: &Kernel) -> bool {
        self.policy.due(kernel.now_ns(), self.queue.borrow().len())
    }
    fn retain(&self, keep: &dyn Fn(&DeferredCall) -> bool) -> Vec<CompletionToken> {
        let mut dropped = Vec::new();
        let mut queue = self.queue.borrow_mut();
        queue.retain(|(_, c)| {
            let keep_it = keep(c);
            if !keep_it {
                dropped.extend(c.token);
            }
            keep_it
        });
        // Re-anchor the doorbell to the oldest surviving call so a
        // dropped older call cannot fire (or hold) the window for the
        // survivors — the same anchoring `Batched` gets per call.
        self.policy.rearm(queue.front().map(|(at, _)| *at));
        dropped
    }
    fn oldest_deferred_at(&self) -> Option<u64> {
        self.queue.borrow().front().map(|(at, _)| *at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(proc: &str) -> DeferredCall {
        DeferredCall {
            from: Domain::Decaf,
            proc: proc.into(),
            args: vec![],
            scalars: vec![],
            token: None,
        }
    }

    #[test]
    fn non_batching_transports_refuse_deferral() {
        let k = Kernel::new();
        for t in [&InProc as &dyn Transport, &Threaded] {
            assert!(t.offer(&k, CpuClass::User, call("writel")).is_err());
            assert_eq!(t.pending(), 0);
            assert!(!t.flush_due(&k));
        }
    }

    #[test]
    fn batched_queues_until_capacity() {
        let k = Kernel::new();
        let t = Batched::new(3);
        for i in 0..3 {
            assert!(!t.flush_due(&k), "not due at {i}");
            t.offer(&k, CpuClass::User, call("writel")).unwrap();
        }
        assert_eq!(t.pending(), 3);
        assert!(t.flush_due(&k));
        let drained = t.drain();
        assert_eq!(drained.len(), 3);
        assert_eq!(t.pending(), 0);
    }

    #[test]
    fn deadline_makes_partial_batch_due() {
        let k = Kernel::new();
        let t = Batched::with_deadline(16, 1_000);
        t.offer(&k, CpuClass::User, call("writel")).unwrap();
        assert!(!t.flush_due(&k), "fresh call, deadline not reached");
        k.run_for(999);
        assert!(!t.flush_due(&k));
        k.run_for(2);
        assert!(
            t.flush_due(&k),
            "a lone deferred call must not wait forever"
        );
        // Draining disarms; the next call re-arms from its own time.
        t.drain();
        assert!(!t.flush_due(&k));
        t.offer(&k, CpuClass::User, call("writel")).unwrap();
        assert!(!t.flush_due(&k), "deadline restarts with the new batch");
        k.run_for(1_001);
        assert!(t.flush_due(&k));
    }

    #[test]
    fn deadline_measured_from_oldest_call() {
        let k = Kernel::new();
        let t = Batched::with_deadline(16, 1_000);
        t.offer(&k, CpuClass::User, call("a")).unwrap();
        k.run_for(900);
        // A later call does not push the oldest call's deadline out.
        t.offer(&k, CpuClass::User, call("b")).unwrap();
        k.run_for(150);
        assert!(t.flush_due(&k));
    }

    #[test]
    fn deadline_reanchors_to_oldest_surviving_call_after_retain() {
        // Regression: the deadline used to be a single armed-at timestamp
        // that `retain` (the reset_end/fault-recovery drop path) left
        // pointing at a dropped call, so the surviving batch flushed a
        // coalescing window off its own defer time.
        let k = Kernel::new();
        let t = Batched::with_deadline(16, 1_000);
        t.offer(&k, CpuClass::User, call("victim")).unwrap();
        k.run_for(900);
        t.offer(&k, CpuClass::User, call("survivor")).unwrap();
        t.retain(&|c| c.proc != "victim");
        k.run_for(150); // t=1050: the victim's window passed, the survivor's did not
        assert!(
            !t.flush_due(&k),
            "deadline must anchor to the oldest surviving call, not a dropped one"
        );
        k.run_for(750); // t=1800
        assert!(!t.flush_due(&k));
        k.run_for(100); // t=1900 = 900 + 1000
        assert!(t.flush_due(&k));
    }

    #[test]
    fn deadline_exact_after_queue_drains_at_watermark() {
        // Pins the watermark-boundary off-by-one: after the queue drains
        // exactly at the watermark, the next lone call's deadline fires
        // exactly one coalescing window after *its own* defer time — not
        // a window measured from the drained batch.
        let k = Kernel::new();
        let t = Batched::with_deadline(2, 1_000);
        t.offer(&k, CpuClass::User, call("a")).unwrap();
        t.offer(&k, CpuClass::User, call("b")).unwrap();
        assert!(t.flush_due(&k), "at the watermark");
        assert_eq!(t.drain().len(), 2, "drained exactly at the watermark");
        k.run_for(600);
        t.offer(&k, CpuClass::User, call("c")).unwrap(); // t=600
        k.run_for(999); // t=1599
        assert!(!t.flush_due(&k), "one tick before c's own deadline");
        k.run_for(1); // t=1600 = 600 + 1000
        assert!(t.flush_due(&k), "due exactly at c's deadline");
    }

    #[test]
    fn retain_drops_matching_calls() {
        let k = Kernel::new();
        let t = Batched::new(8);
        t.offer(&k, CpuClass::User, call("a")).unwrap();
        t.offer(&k, CpuClass::User, call("b")).unwrap();
        t.retain(&|c| c.proc != "a");
        let left = t.drain();
        assert_eq!(left.len(), 1);
        assert_eq!(left[0].proc, "b");
    }

    #[test]
    fn async_issues_distinct_tokens_and_keeps_requeued_ones() {
        let k = Kernel::new();
        let t = Async::new(8, 1_000);
        let a = t.offer(&k, CpuClass::User, call("a")).unwrap().unwrap();
        let b = t.offer(&k, CpuClass::User, call("b")).unwrap().unwrap();
        assert_ne!(a, b, "each fresh offer mints a new token");
        assert_eq!(t.pending(), 2);
        let drained = t.drain();
        assert_eq!(drained[0].token, Some(a));
        assert_eq!(drained[1].token, Some(b));
        // A requeued call keeps its token: no double-issue on recovery.
        let again = t
            .offer(&k, CpuClass::User, drained[0].clone())
            .unwrap()
            .unwrap();
        assert_eq!(again, a);
    }

    #[test]
    fn async_flush_due_follows_doorbell_policy() {
        let k = Kernel::new();
        let t = Async::new(3, 1_000);
        assert!(!t.flush_due(&k), "empty queue never due");
        t.offer(&k, CpuClass::User, call("a")).unwrap();
        assert!(!t.flush_due(&k));
        k.run_for(1_000);
        assert!(t.flush_due(&k), "deadline fires for a partial batch");
        t.drain();
        for _ in 0..3 {
            assert!(!t.flush_due(&k));
            t.offer(&k, CpuClass::User, call("b")).unwrap();
        }
        assert!(t.flush_due(&k), "watermark fires immediately");
    }

    #[test]
    fn async_retain_returns_cancelled_tokens_and_reanchors() {
        let k = Kernel::new();
        let t = Async::new(16, 1_000);
        let victim = t
            .offer(&k, CpuClass::User, call("victim"))
            .unwrap()
            .unwrap();
        k.run_for(900);
        t.offer(&k, CpuClass::User, call("survivor")).unwrap();
        let cancelled = t.retain(&|c| c.proc != "victim");
        assert_eq!(cancelled, vec![victim]);
        k.run_for(150); // t=1050: past the victim's window, within the survivor's
        assert!(
            !t.flush_due(&k),
            "deadline must re-anchor to the surviving call"
        );
        k.run_for(850); // t=1900 = 900 + 1000
        assert!(t.flush_due(&k));
    }

    #[test]
    fn crossing_costs_ordered() {
        // threaded > batched == async > inproc for the same crossing.
        let cost = |t: &dyn Transport| {
            let k = Kernel::new();
            let before = k.snapshot().user_busy_ns;
            t.charge_crossing(&k, CpuClass::User, true);
            k.snapshot().user_busy_ns - before
        };
        let inproc = cost(&InProc);
        let batched = cost(&Batched::new(4));
        let threaded = cost(&Threaded);
        let asynchronous = cost(&Async::new(4, 1_000));
        assert!(inproc < batched && batched < threaded);
        assert_eq!(
            asynchronous, batched,
            "a synchronous crossing prices identically on async"
        );
    }
}
