//! Pluggable control-transfer mechanisms.
//!
//! The paper's XPC hard-wires one policy: reuse the calling thread for
//! co-located domains (§2.3), schedule a dedicated thread otherwise. This
//! module turns that choice into a [`Transport`] trait the channel's stub
//! layer consults for every crossing, with three implementations:
//!
//! * [`InProc`] — thread reuse, the paper's optimization;
//! * [`Threaded`] — dedicated-thread handoff, the unoptimized baseline;
//! * [`Batched`] — thread reuse **plus** a deferred-call queue: calls
//!   whose results nobody reads are parked in a shared ring and flushed
//!   through the boundary in a single crossing (the doorbell pattern —
//!   the same lever "The Case for Writing Network Drivers in High-Level
//!   Programming Languages" identifies as what lets high-level drivers
//!   match C throughput).
//!
//! The trait is the seam later scaling work builds on: an async transport
//! or a sharded multi-channel transport plugs in here without touching
//! the stub layer.

use std::cell::RefCell;
use std::collections::VecDeque;

use decaf_simkernel::{costs, CpuClass, Kernel};
use decaf_xdr::graph::CAddr;
use decaf_xdr::XdrValue;

use crate::domain::Domain;

/// Transport selector carried by `ChannelConfig` (the config stays
/// `Copy`; the channel instantiates the matching [`Transport`] object).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// Reuse the calling thread (paper §2.3).
    InProc,
    /// Hand off to a dedicated thread in the target domain.
    Threaded,
    /// Thread reuse plus deferred-call batching with delta-friendly
    /// flushes.
    Batched,
}

/// Deferred calls queued beyond this point force a flush.
pub const DEFAULT_BATCH_CAPACITY: usize = 16;

/// Virtual-time deadline after which a batched transport flushes even a
/// partial queue (adaptive batching): low-rate control paths must not
/// hold posted writes for long. Matches the shmring doorbell-coalescing
/// window — both are the same "amortize or bound the latency" decision.
pub const DEFAULT_BATCH_DEADLINE_NS: u64 = costs::DOORBELL_COALESCE_NS;

/// A call parked in a batched transport's queue: executed at the next
/// flush, result discarded (only result-free calls should be deferred).
#[derive(Debug, Clone)]
pub struct DeferredCall {
    /// Calling domain.
    pub from: Domain,
    /// Target procedure name.
    pub proc: String,
    /// Object arguments (caller-heap addresses).
    pub args: Vec<Option<CAddr>>,
    /// By-value scalar arguments.
    pub scalars: Vec<XdrValue>,
}

/// A control-transfer mechanism. The stub layer asks it to price each
/// one-way crossing and offers it calls for deferral.
pub trait Transport {
    /// Which selector built this transport.
    fn kind(&self) -> TransportKind;

    /// Human-readable name for stats and docs.
    fn name(&self) -> &'static str;

    /// Charges the virtual-time cost of one one-way control transfer
    /// initiated by `class`.
    fn charge_crossing(&self, kernel: &Kernel, class: CpuClass, domain_crossing: bool);

    /// Offers a call for deferral. A transport that does not batch hands
    /// the call back (`Err`) and the channel executes it synchronously.
    fn offer(
        &self,
        kernel: &Kernel,
        class: CpuClass,
        call: DeferredCall,
    ) -> Result<(), DeferredCall>;

    /// Drains every queued call, oldest first.
    fn drain(&self) -> Vec<DeferredCall>;

    /// Number of calls currently queued.
    fn pending(&self) -> usize {
        0
    }

    /// Whether the queue must flush now: it reached capacity, or its
    /// oldest deferred call has waited past the transport's virtual-time
    /// deadline (adaptive batching).
    fn flush_due(&self, kernel: &Kernel) -> bool {
        let _ = kernel;
        false
    }

    /// Drops queued calls not matching `keep` (fault-recovery hygiene).
    fn retain(&self, keep: &dyn Fn(&DeferredCall) -> bool) {
        let _ = keep;
    }
}

/// Builds the transport object for a selector.
pub fn build(kind: TransportKind) -> Box<dyn Transport> {
    match kind {
        TransportKind::InProc => Box::new(InProc),
        TransportKind::Threaded => Box::new(Threaded),
        TransportKind::Batched => Box::new(Batched::new(DEFAULT_BATCH_CAPACITY)),
    }
}

/// Thread-reuse transport: the calling thread continues in the target
/// domain, paying only the protection-boundary switch.
#[derive(Debug, Default, Clone, Copy)]
pub struct InProc;

impl Transport for InProc {
    fn kind(&self) -> TransportKind {
        TransportKind::InProc
    }
    fn name(&self) -> &'static str {
        "inproc"
    }
    fn charge_crossing(&self, kernel: &Kernel, class: CpuClass, domain_crossing: bool) {
        if domain_crossing {
            kernel.charge(class, costs::DOMAIN_CROSSING_NS);
        }
    }
    fn offer(
        &self,
        _kernel: &Kernel,
        _class: CpuClass,
        call: DeferredCall,
    ) -> Result<(), DeferredCall> {
        Err(call)
    }
    fn drain(&self) -> Vec<DeferredCall> {
        Vec::new()
    }
}

/// Dedicated-thread transport: every crossing additionally pays a
/// scheduler round trip to wake the target domain's service thread.
#[derive(Debug, Default, Clone, Copy)]
pub struct Threaded;

impl Transport for Threaded {
    fn kind(&self) -> TransportKind {
        TransportKind::Threaded
    }
    fn name(&self) -> &'static str {
        "threaded"
    }
    fn charge_crossing(&self, kernel: &Kernel, class: CpuClass, domain_crossing: bool) {
        if domain_crossing {
            kernel.charge(class, costs::DOMAIN_CROSSING_NS);
        }
        kernel.charge(class, costs::THREAD_HANDOFF_NS);
    }
    fn offer(
        &self,
        _kernel: &Kernel,
        _class: CpuClass,
        call: DeferredCall,
    ) -> Result<(), DeferredCall> {
        Err(call)
    }
    fn drain(&self) -> Vec<DeferredCall> {
        Vec::new()
    }
}

/// Batching transport: deferred calls accumulate in a shared ring and a
/// whole batch crosses the boundary on one doorbell.
///
/// Flushes are due at *capacity* (the batch is worth a crossing) or at a
/// virtual-time *deadline* measured from the oldest queued call (a
/// low-rate path must not hold a posted write indefinitely) — the same
/// watermark/deadline decision a shmring
/// [`decaf_shmring::DoorbellPolicy`] makes for parked descriptors, with
/// the queue capacity as the watermark.
///
/// The deadline is anchored *per call*: each deferred call carries its
/// own defer timestamp and `flush_due` measures from the oldest call
/// still queued. An earlier implementation kept one shared armed-at
/// timestamp that survived `retain` (the fault-recovery drop path), so
/// after a queue drained at the watermark boundary the next batch's
/// deadline could be measured from a call that no longer existed —
/// firing a coalescing window early or late depending on which side of
/// the boundary the drop landed. The regression tests below pin the
/// exact anchoring.
#[derive(Debug)]
pub struct Batched {
    /// `(deferred_at_ns, call)` in arrival order.
    queue: RefCell<VecDeque<(u64, DeferredCall)>>,
    capacity: usize,
    deadline_ns: u64,
}

impl Batched {
    /// A batched transport flushing after `capacity` queued calls or
    /// [`DEFAULT_BATCH_DEADLINE_NS`] of virtual time, whichever first.
    pub fn new(capacity: usize) -> Self {
        Batched::with_deadline(capacity, DEFAULT_BATCH_DEADLINE_NS)
    }

    /// A batched transport with an explicit flush deadline.
    pub fn with_deadline(capacity: usize, deadline_ns: u64) -> Self {
        Batched {
            queue: RefCell::new(VecDeque::new()),
            capacity: capacity.max(1),
            deadline_ns,
        }
    }
}

impl Transport for Batched {
    fn kind(&self) -> TransportKind {
        TransportKind::Batched
    }
    fn name(&self) -> &'static str {
        "batched"
    }
    fn charge_crossing(&self, kernel: &Kernel, class: CpuClass, domain_crossing: bool) {
        if domain_crossing {
            kernel.charge(class, costs::DOMAIN_CROSSING_NS);
        }
        kernel.charge(class, costs::BATCH_DOORBELL_NS);
    }
    fn offer(
        &self,
        kernel: &Kernel,
        class: CpuClass,
        call: DeferredCall,
    ) -> Result<(), DeferredCall> {
        kernel.charge(class, costs::BATCH_ENQUEUE_NS);
        self.queue.borrow_mut().push_back((kernel.now_ns(), call));
        Ok(())
    }
    fn drain(&self) -> Vec<DeferredCall> {
        self.queue.borrow_mut().drain(..).map(|(_, c)| c).collect()
    }
    fn pending(&self) -> usize {
        self.queue.borrow().len()
    }
    fn flush_due(&self, kernel: &Kernel) -> bool {
        let queue = self.queue.borrow();
        match queue.front() {
            None => false,
            Some((oldest_at, _)) => {
                queue.len() >= self.capacity
                    || kernel.now_ns().saturating_sub(*oldest_at) >= self.deadline_ns
            }
        }
    }
    fn retain(&self, keep: &dyn Fn(&DeferredCall) -> bool) {
        self.queue.borrow_mut().retain(|(_, c)| keep(c));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(proc: &str) -> DeferredCall {
        DeferredCall {
            from: Domain::Decaf,
            proc: proc.into(),
            args: vec![],
            scalars: vec![],
        }
    }

    #[test]
    fn non_batching_transports_refuse_deferral() {
        let k = Kernel::new();
        for t in [&InProc as &dyn Transport, &Threaded] {
            assert!(t.offer(&k, CpuClass::User, call("writel")).is_err());
            assert_eq!(t.pending(), 0);
            assert!(!t.flush_due(&k));
        }
    }

    #[test]
    fn batched_queues_until_capacity() {
        let k = Kernel::new();
        let t = Batched::new(3);
        for i in 0..3 {
            assert!(!t.flush_due(&k), "not due at {i}");
            t.offer(&k, CpuClass::User, call("writel")).unwrap();
        }
        assert_eq!(t.pending(), 3);
        assert!(t.flush_due(&k));
        let drained = t.drain();
        assert_eq!(drained.len(), 3);
        assert_eq!(t.pending(), 0);
    }

    #[test]
    fn deadline_makes_partial_batch_due() {
        let k = Kernel::new();
        let t = Batched::with_deadline(16, 1_000);
        t.offer(&k, CpuClass::User, call("writel")).unwrap();
        assert!(!t.flush_due(&k), "fresh call, deadline not reached");
        k.run_for(999);
        assert!(!t.flush_due(&k));
        k.run_for(2);
        assert!(
            t.flush_due(&k),
            "a lone deferred call must not wait forever"
        );
        // Draining disarms; the next call re-arms from its own time.
        t.drain();
        assert!(!t.flush_due(&k));
        t.offer(&k, CpuClass::User, call("writel")).unwrap();
        assert!(!t.flush_due(&k), "deadline restarts with the new batch");
        k.run_for(1_001);
        assert!(t.flush_due(&k));
    }

    #[test]
    fn deadline_measured_from_oldest_call() {
        let k = Kernel::new();
        let t = Batched::with_deadline(16, 1_000);
        t.offer(&k, CpuClass::User, call("a")).unwrap();
        k.run_for(900);
        // A later call does not push the oldest call's deadline out.
        t.offer(&k, CpuClass::User, call("b")).unwrap();
        k.run_for(150);
        assert!(t.flush_due(&k));
    }

    #[test]
    fn deadline_reanchors_to_oldest_surviving_call_after_retain() {
        // Regression: the deadline used to be a single armed-at timestamp
        // that `retain` (the reset_end/fault-recovery drop path) left
        // pointing at a dropped call, so the surviving batch flushed a
        // coalescing window off its own defer time.
        let k = Kernel::new();
        let t = Batched::with_deadline(16, 1_000);
        t.offer(&k, CpuClass::User, call("victim")).unwrap();
        k.run_for(900);
        t.offer(&k, CpuClass::User, call("survivor")).unwrap();
        t.retain(&|c| c.proc != "victim");
        k.run_for(150); // t=1050: the victim's window passed, the survivor's did not
        assert!(
            !t.flush_due(&k),
            "deadline must anchor to the oldest surviving call, not a dropped one"
        );
        k.run_for(750); // t=1800
        assert!(!t.flush_due(&k));
        k.run_for(100); // t=1900 = 900 + 1000
        assert!(t.flush_due(&k));
    }

    #[test]
    fn deadline_exact_after_queue_drains_at_watermark() {
        // Pins the watermark-boundary off-by-one: after the queue drains
        // exactly at the watermark, the next lone call's deadline fires
        // exactly one coalescing window after *its own* defer time — not
        // a window measured from the drained batch.
        let k = Kernel::new();
        let t = Batched::with_deadline(2, 1_000);
        t.offer(&k, CpuClass::User, call("a")).unwrap();
        t.offer(&k, CpuClass::User, call("b")).unwrap();
        assert!(t.flush_due(&k), "at the watermark");
        assert_eq!(t.drain().len(), 2, "drained exactly at the watermark");
        k.run_for(600);
        t.offer(&k, CpuClass::User, call("c")).unwrap(); // t=600
        k.run_for(999); // t=1599
        assert!(!t.flush_due(&k), "one tick before c's own deadline");
        k.run_for(1); // t=1600 = 600 + 1000
        assert!(t.flush_due(&k), "due exactly at c's deadline");
    }

    #[test]
    fn retain_drops_matching_calls() {
        let k = Kernel::new();
        let t = Batched::new(8);
        t.offer(&k, CpuClass::User, call("a")).unwrap();
        t.offer(&k, CpuClass::User, call("b")).unwrap();
        t.retain(&|c| c.proc != "a");
        let left = t.drain();
        assert_eq!(left.len(), 1);
        assert_eq!(left[0].proc, "b");
    }

    #[test]
    fn crossing_costs_ordered() {
        // threaded > batched > inproc for the same crossing.
        let cost = |t: &dyn Transport| {
            let k = Kernel::new();
            let before = k.snapshot().user_busy_ns;
            t.charge_crossing(&k, CpuClass::User, true);
            k.snapshot().user_busy_ns - before
        };
        let inproc = cost(&InProc);
        let batched = cost(&Batched::new(4));
        let threaded = cost(&Threaded);
        assert!(inproc < batched && batched < threaded);
    }
}
