//! The request/response data-path channel for URB-shaped (storage/USB)
//! transfers: the storage sibling of [`crate::DataPathChannel`].
//!
//! The NIC data path is a pair of unidirectional streams; a storage
//! data path is a stream of *transactions*. A [`UrbDataPath`] pairs an
//! [`XpcChannel`] with the [`decaf_shmring`] URB pieces:
//!
//! * the **submitter** (the nucleus' USB core) allocates a
//!   variable-length scatter-gather chain — one contiguous run when the
//!   pool has one, several when it is fragmented, none at all for a
//!   zero-length status-stage transfer — *adopts* the payload into it
//!   (zero-copy page donation, never a marshal or a memcpy) and posts a
//!   [`UrbDescriptor`] request into the **submit ring**;
//! * the **doorbell** is an ordinary XPC call with zero object
//!   arguments, coalesced by a [`DoorbellPolicy`] exactly like the NIC
//!   paths: ring at a watermark, or once the oldest request has waited
//!   out the coalescing deadline;
//! * the **completer** (the decaf driver's drain handler) consumes
//!   requests, programs the hardware straight from the shared sector
//!   run, and pushes each descriptor — now carrying `status` and the
//!   *actual* transferred length — onto the **giveback ring**;
//! * the submitter [`UrbDataPath::reclaim`]s givebacks: OUT runs are
//!   freed, IN runs are read *in place* (the ownership handback — the
//!   completion carries the run, not a copied payload) and then freed.
//!
//! Conservation is tracked end to end: every URB submitted is either
//! given back or still in flight, and the sector pool's own counters
//! guarantee no run leaks across the boundary.

use std::cell::Cell;
use std::rc::Rc;

use decaf_shmring::{
    DoorbellPolicy, PoolError, RingError, SectorPool, ShmRing, UrbDescriptor, XferDir,
};
use decaf_simkernel::Kernel;
use decaf_xdr::XdrValue;

use crate::domain::Domain;
use crate::endpoint::XpcChannel;
use crate::error::{XpcError, XpcResult};

/// Conservation counters for one URB data path.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct UrbPathStats {
    /// URB requests posted into the submit ring.
    pub submitted: u64,
    /// Completed URBs reclaimed from the giveback ring.
    pub given_back: u64,
    /// Most URBs simultaneously in flight.
    pub in_flight_hwm: u64,
}

/// One reclaimed URB completion, ready for the submitter's callback
/// dispatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UrbReclaim {
    /// The submitter's correlation cookie.
    pub cookie: u64,
    /// 0 on success, a negative errno on failure.
    pub status: i32,
    /// Bytes actually transferred (short reads report the true length).
    pub actual: u32,
    /// Transfer direction.
    pub dir: XferDir,
    /// IN-direction payload, read *in place* from the handed-back sector
    /// run before the run was freed — a simulation artifact of the
    /// ownership handback, not a modeled copy.
    pub data: Vec<u8>,
}

impl UrbReclaim {
    /// The completion as a `Result`, for callers that map errno to their
    /// own error type.
    pub fn ok(&self) -> bool {
        self.status == 0
    }
}

/// Submitter-side handle: posts URB requests, coalesces doorbells,
/// reclaims givebacks.
pub struct UrbDataPath {
    channel: Rc<XpcChannel>,
    producer: Domain,
    submit: Rc<ShmRing<UrbDescriptor>>,
    giveback: Rc<ShmRing<UrbDescriptor>>,
    pool: Rc<SectorPool>,
    policy: DoorbellPolicy,
    doorbell_proc: String,
    in_flight: Cell<u64>,
    stats: Cell<UrbPathStats>,
}

impl UrbDataPath {
    /// Builds a URB data path whose requests flow `producer` → peer and
    /// whose doorbell invokes `doorbell_proc` (which must be registered
    /// at the peer end of `channel`). `pool` is the sector pool both
    /// ends share — normally carved from the device's own DMA region.
    pub fn new(
        channel: Rc<XpcChannel>,
        producer: Domain,
        doorbell_proc: impl Into<String>,
        submit: Rc<ShmRing<UrbDescriptor>>,
        giveback: Rc<ShmRing<UrbDescriptor>>,
        pool: Rc<SectorPool>,
        policy: DoorbellPolicy,
    ) -> XpcResult<Rc<Self>> {
        channel.peer_domain(producer)?;
        Ok(Rc::new(UrbDataPath {
            channel,
            producer,
            submit,
            giveback,
            pool,
            policy,
            doorbell_proc: doorbell_proc.into(),
            in_flight: Cell::new(0),
            stats: Cell::new(UrbPathStats::default()),
        }))
    }

    /// The underlying control channel.
    pub fn channel(&self) -> &Rc<XpcChannel> {
        &self.channel
    }

    /// The shared sector pool.
    pub fn pool(&self) -> &Rc<SectorPool> {
        &self.pool
    }

    /// The submit ring (requests, submitter → completer).
    pub fn submit_ring(&self) -> &Rc<ShmRing<UrbDescriptor>> {
        &self.submit
    }

    /// The giveback ring (completions, completer → submitter).
    pub fn giveback_ring(&self) -> &Rc<ShmRing<UrbDescriptor>> {
        &self.giveback
    }

    /// Requests posted and not yet drained by a doorbell.
    pub fn pending(&self) -> usize {
        self.submit.len()
    }

    /// URBs submitted and not yet given back.
    pub fn in_flight(&self) -> u64 {
        self.in_flight.get()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> UrbPathStats {
        self.stats.get()
    }

    /// The conservation invariant: every URB ever submitted is either
    /// given back or still in flight.
    pub fn conserved(&self) -> bool {
        let s = self.stats.get();
        s.submitted == s.given_back + self.in_flight.get()
    }

    fn bump(&self, f: impl FnOnce(&mut UrbPathStats)) {
        let mut s = self.stats.get();
        f(&mut s);
        self.stats.set(s);
    }

    fn map_pool_err(e: PoolError) -> XpcError {
        XpcError::Backpressure(e.to_string())
    }

    /// An end handle for `domain` — what the completer's drain handler
    /// captures instead of the whole path (no reference cycles through
    /// registered procedures).
    pub fn end(&self, domain: Domain) -> UrbEnd {
        UrbEnd {
            submit: Rc::clone(&self.submit),
            giveback: Rc::clone(&self.giveback),
            pool: Rc::clone(&self.pool),
            domain,
        }
    }

    /// Submits a host-to-device transfer: allocates a scatter-gather
    /// chain sized to the payload, adopts the payload into it (zero-copy
    /// page donation — [`decaf_simkernel::costs::SECTOR_MAP_NS`] per
    /// sector, no `charge_copy`), posts the request descriptor and rings
    /// the doorbell if the policy says it is due.
    ///
    /// On sector exhaustion the path forces a doorbell so the completer
    /// drains, then reports [`XpcError::Backpressure`]; the caller
    /// reclaims givebacks and retries. An error always means the URB was
    /// *not* submitted.
    pub fn submit_out(
        &self,
        kernel: &Kernel,
        endpoint: u8,
        payload: &[u8],
        cookie: u64,
    ) -> XpcResult<()> {
        let chain = self.alloc_chain(kernel, payload.len())?;
        if let Err(e) = self.pool.adopt_payload_sg(kernel, payload, chain) {
            let _ = self.pool.free_sg(chain);
            return Err(Self::map_pool_err(e));
        }
        self.submit(
            kernel,
            UrbDescriptor::request_out(chain, payload.len() as u32, endpoint, cookie),
        )
    }

    /// Submits a device-to-host transfer: allocates an empty chain of
    /// `expected_len` bytes capacity for the device to DMA into and
    /// posts the request. The giveback hands the chain back with the
    /// *actual* transferred length.
    pub fn submit_in(
        &self,
        kernel: &Kernel,
        endpoint: u8,
        expected_len: usize,
        cookie: u64,
    ) -> XpcResult<()> {
        let chain = self.alloc_chain(kernel, expected_len)?;
        self.submit(
            kernel,
            UrbDescriptor::request_in(chain, expected_len as u32, endpoint, cookie),
        )
    }

    /// Submits a caller-built descriptor, validating it first: the
    /// chain must be live and its capacity must cover `desc.len`, so an
    /// undersized IN request fails **here**, to the caller, as
    /// [`XpcError::InvalidRequest`] — not device-side mid-drain as a
    /// surprise `TooLarge`. Like every other submit error path, a
    /// refused descriptor's chain is freed: an error always means the
    /// URB was not submitted and nothing leaked.
    pub fn submit(&self, kernel: &Kernel, desc: UrbDescriptor) -> XpcResult<()> {
        match self.pool.sg_capacity(desc.buf) {
            Ok(cap) if cap >= desc.len as usize => self.post(kernel, desc),
            Ok(cap) => {
                let _ = self.pool.free_sg(desc.buf);
                Err(XpcError::InvalidRequest(format!(
                    "URB requests {} bytes but its chain holds {cap}",
                    desc.len
                )))
            }
            Err(e) => Err(XpcError::InvalidRequest(format!(
                "URB names a dead chain: {e}"
            ))),
        }
    }

    fn alloc_chain(&self, kernel: &Kernel, len: usize) -> XpcResult<decaf_shmring::SgHandle> {
        match self.pool.alloc_sg(len) {
            Ok(run) => {
                kernel.trace_instant(
                    "pool",
                    "alloc",
                    &[
                        ("bytes", len as u64),
                        ("in_use", self.pool.in_use_sectors() as u64),
                    ],
                );
                Ok(run)
            }
            Err(PoolError::Exhausted) => {
                // Force the completer to drain; the freed runs come back
                // through the giveback ring, which only the caller may
                // reclaim (completions carry callbacks it must dispatch).
                self.ring_doorbell(kernel)?;
                Err(XpcError::Backpressure(
                    "sector pool exhausted: reclaim givebacks and retry".into(),
                ))
            }
            Err(e) => Err(Self::map_pool_err(e)),
        }
    }

    fn post(&self, kernel: &Kernel, desc: UrbDescriptor) -> XpcResult<()> {
        let chain = desc.buf;
        let bytes = desc.len as u64;
        match self.submit.push(kernel, self.producer.cpu_class(), desc) {
            Ok(()) => {}
            Err(RingError::Full) => {
                let _ = self.pool.free_sg(chain);
                // Same staged backpressure as sector exhaustion: force
                // the completer to drain, so the caller's
                // reclaim-and-retry can actually succeed.
                let _ = self.ring_doorbell(kernel);
                return Err(XpcError::Backpressure(format!(
                    "ring `{}` full: reclaim givebacks and retry",
                    self.submit.name()
                )));
            }
        }
        self.policy.note_post(kernel.now_ns());
        kernel.trace_instant(
            "ring",
            "post",
            &[("occupancy", self.submit.len() as u64), ("bytes", bytes)],
        );
        let in_flight = self.in_flight.get() + 1;
        self.in_flight.set(in_flight);
        let hwm = self.submit.stats().occupancy_hwm;
        self.bump(|s| {
            s.submitted += 1;
            s.in_flight_hwm = s.in_flight_hwm.max(in_flight);
        });
        self.channel.bump(|s| {
            s.ring_posts += 1;
            s.ring_occupancy_hwm = s.ring_occupancy_hwm.max(hwm);
        });
        // The URB is committed; the doorbell is best-effort (a completer
        // fault is contained by the XPC layer and the deadline poll
        // retries the crossing).
        let _ = self.maybe_ring(kernel);
        Ok(())
    }

    /// Rings the doorbell if the policy says the parked requests are due
    /// (watermark reached or coalescing deadline expired).
    pub fn maybe_ring(&self, kernel: &Kernel) -> XpcResult<bool> {
        if self.policy.due(kernel.now_ns(), self.submit.len()) {
            self.ring_doorbell(kernel)?;
            return Ok(true);
        }
        if !self.submit.is_empty() {
            kernel.trace_instant(
                "ring",
                "coalesce",
                &[
                    ("parked", self.submit.len() as u64),
                    (
                        "age_ns",
                        self.policy.armed_age_ns(kernel.now_ns()).unwrap_or(0),
                    ),
                ],
            );
        }
        Ok(false)
    }

    /// Rings the doorbell unconditionally (no-op on an empty submit
    /// ring): one XPC crossing, zero object arguments, carrying only the
    /// request count.
    pub fn ring_doorbell(&self, kernel: &Kernel) -> XpcResult<()> {
        if self.submit.is_empty() {
            return Ok(());
        }
        let count = self.submit.len() as u32;
        let _span = kernel.trace_span("ring", "doorbell");
        kernel.trace_instant("ring", "ring", &[("descriptors", count as u64)]);
        self.channel.call(
            kernel,
            self.producer,
            &self.doorbell_proc,
            &[],
            &[XdrValue::UInt(count)],
        )?;
        self.channel.bump(|s| s.doorbells += 1);
        // A completer that declined or drained under a budget may have
        // left requests parked; re-arm the deadline for the survivors
        // instead of disarming into the never-fires state.
        self.policy
            .rang_with_survivors(kernel.now_ns(), self.submit.len());
        Ok(())
    }

    /// Submitter-side poll hook (call from a timer's work item): rings
    /// the doorbell if the coalescing deadline has expired on parked
    /// requests. Returns whether a doorbell was rung; the caller
    /// reclaims givebacks afterwards either way.
    pub fn poll(&self, kernel: &Kernel) -> XpcResult<bool> {
        self.maybe_ring(kernel)
    }

    /// Drains the giveback ring: for every completed descriptor, reads
    /// the IN-direction payload in place (the ownership handback), frees
    /// the sector run, and returns a [`UrbReclaim`] for the submitter's
    /// callback dispatch. Givebacks may arrive in any order.
    pub fn reclaim(&self, kernel: &Kernel) -> Vec<UrbReclaim> {
        let done = self.giveback.drain(kernel, self.producer.cpu_class());
        if !done.is_empty() {
            // Every giveback frees its sector run below, so one instant
            // carries both the reclaim count and the pool releases.
            kernel.trace_instant(
                "ring",
                "reclaim",
                &[
                    ("completions", done.len() as u64),
                    ("freed_runs", done.len() as u64),
                ],
            );
        }
        let mut out = Vec::with_capacity(done.len());
        for d in done {
            // An inconsistent giveback (actual exceeding the chain, a
            // stale handle) must surface as -EIO, never masquerade as a
            // successful zero-byte read.
            let (status, data) = if d.dir == XferDir::In && d.ok() {
                match self.pool.read_payload_sg(d.buf, d.actual as usize) {
                    Ok(data) => (d.status, data),
                    Err(_) => (-5, Vec::new()),
                }
            } else {
                (d.status, Vec::new())
            };
            let freed = self.pool.free_sg(d.buf);
            debug_assert!(
                freed.is_ok(),
                "giveback carried a handle the pool rejects: {freed:?}"
            );
            self.in_flight.set(self.in_flight.get() - 1);
            self.bump(|s| s.given_back += 1);
            out.push(UrbReclaim {
                cookie: d.cookie,
                status,
                actual: d.actual,
                dir: d.dir,
                data,
            });
        }
        out
    }
}

impl std::fmt::Debug for UrbDataPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UrbDataPath")
            .field("producer", &self.producer)
            .field("submit", &self.submit.name())
            .field("pending", &self.submit.len())
            .field("in_flight", &self.in_flight.get())
            .finish()
    }
}

/// The completer's view of the shared rings: just `Rc`s to pinned
/// memory, so drain handlers capture it without creating a reference
/// cycle through the channel's procedure table.
#[derive(Clone)]
pub struct UrbEnd {
    submit: Rc<ShmRing<UrbDescriptor>>,
    giveback: Rc<ShmRing<UrbDescriptor>>,
    pool: Rc<SectorPool>,
    domain: Domain,
}

impl UrbEnd {
    /// The shared sector pool (for [`SectorPool::sg_segments`]: the
    /// completer programs the hardware straight from the chain's DMA
    /// extents, one transfer descriptor per segment).
    pub fn pool(&self) -> &Rc<SectorPool> {
        &self.pool
    }

    /// Pops every posted request, oldest first — FIFO order is what
    /// keeps multi-URB transactions (command, then data stage) correct.
    pub fn consume(&self, kernel: &Kernel) -> Vec<UrbDescriptor> {
        self.submit.drain(kernel, self.domain.cpu_class())
    }

    /// Hands a completed descriptor (response fields filled in via
    /// [`UrbDescriptor::completed`]) back through the giveback ring.
    pub fn complete(&self, kernel: &Kernel, desc: UrbDescriptor) -> XpcResult<()> {
        self.giveback
            .push(kernel, self.domain.cpu_class(), desc)
            .map_err(|_| {
                XpcError::Backpressure(format!("giveback ring `{}` full", self.giveback.name()))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::{ChannelConfig, ProcDef};
    use decaf_simkernel::costs;
    use decaf_xdr::mask::MaskSet;
    use decaf_xdr::XdrSpec;

    fn channel() -> Rc<XpcChannel> {
        Rc::new(XpcChannel::new(
            XdrSpec::parse("struct unused { int x; };").unwrap(),
            MaskSet::full(),
            ChannelConfig::kernel_user_shmring(),
            Domain::Nucleus,
            Domain::Decaf,
        ))
    }

    /// A completer that echoes OUT payload lengths and "reads" 100 bytes
    /// for IN requests (a short read against 512-byte runs).
    fn register_drain(ch: &Rc<XpcChannel>, end: UrbEnd) {
        ch.register_proc(
            Domain::Decaf,
            ProcDef {
                name: "urb_drain".into(),
                arg_types: vec![],
                handler: Rc::new(move |k, _, _, _| {
                    for d in end.consume(k) {
                        let segs = end.pool().sg_segments(d.buf).expect("live chain");
                        assert!(segs.iter().all(|s| s.offset < 512 * 64));
                        let actual = match d.dir {
                            XferDir::Out => d.len,
                            XferDir::In => 100,
                        };
                        end.complete(k, d.completed(0, actual)).unwrap();
                    }
                    XdrValue::Void
                }),
            },
        )
        .unwrap();
    }

    fn path(watermark: usize) -> (Kernel, Rc<UrbDataPath>) {
        let k = Kernel::new();
        let ch = channel();
        let dp = UrbDataPath::new(
            Rc::clone(&ch),
            Domain::Nucleus,
            "urb_drain",
            Rc::new(ShmRing::new("urb-submit", 32)),
            Rc::new(ShmRing::new("urb-giveback", 64)),
            Rc::new(SectorPool::with_capacity(512, 64)),
            DoorbellPolicy::with_watermark(watermark),
        )
        .unwrap();
        register_drain(&ch, dp.end(Domain::Decaf));
        (k, dp)
    }

    #[test]
    fn out_urbs_cross_as_descriptors_with_zero_copies() {
        let (k, dp) = path(4);
        for i in 0..8u64 {
            dp.submit_out(&k, 2, &[0x5a; 517], i).unwrap();
        }
        let done = dp.reclaim(&k);
        assert_eq!(done.len(), 8, "two watermark doorbells drained all");
        assert!(done.iter().all(|r| r.ok() && r.actual == 517));
        assert_eq!(
            k.stats().bytes_copied,
            0,
            "payloads are adopted, not copied"
        );
        let s = dp.channel().stats();
        assert_eq!(s.doorbells, 2);
        assert_eq!(s.ring_posts, 8);
        assert!(
            s.bytes_in + s.bytes_out < 64,
            "only doorbell headers marshal"
        );
        assert!(dp.conserved());
        assert_eq!(dp.pool().in_use_sectors(), 0, "every run handed back");
    }

    #[test]
    fn in_completions_hand_ownership_back_with_actual_length() {
        let (k, dp) = path(1);
        dp.submit_in(&k, 1, 512, 42).unwrap();
        let done = dp.reclaim(&k);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].cookie, 42);
        assert_eq!(done[0].actual, 100, "short read reports the true length");
        assert_eq!(done[0].data.len(), 100);
        assert_eq!(k.stats().bytes_copied, 0, "handback is in place");
        assert!(dp.conserved());
    }

    #[test]
    fn deadline_flushes_a_lone_urb_via_poll() {
        let (k, dp) = path(8);
        dp.submit_out(&k, 2, b"cmd", 1).unwrap();
        assert_eq!(dp.pending(), 1, "below watermark, parked");
        assert!(!dp.poll(&k).unwrap());
        k.run_for(costs::DOORBELL_COALESCE_NS + 1);
        assert!(dp.poll(&k).unwrap(), "coalescing deadline expired");
        assert_eq!(dp.reclaim(&k).len(), 1);
    }

    #[test]
    fn declined_drain_survivors_still_deadline_fire() {
        // Regression for the disarm-with-occupancy hazard: a completer
        // that declines a doorbell (device busy — consumes nothing) used
        // to leave the ring occupied with `armed_at == None`, so
        // below-watermark survivors could never deadline-fire and waited
        // for the watermark forever.
        let k = Kernel::new();
        let ch = channel();
        let dp = UrbDataPath::new(
            Rc::clone(&ch),
            Domain::Nucleus,
            "urb_drain",
            Rc::new(ShmRing::new("urb-submit", 8)),
            Rc::new(ShmRing::new("urb-giveback", 8)),
            Rc::new(SectorPool::with_capacity(512, 8)),
            DoorbellPolicy::with_watermark(8),
        )
        .unwrap();
        let end = dp.end(Domain::Decaf);
        let busy = Rc::new(Cell::new(true));
        {
            let busy = Rc::clone(&busy);
            ch.register_proc(
                Domain::Decaf,
                ProcDef {
                    name: "urb_drain".into(),
                    arg_types: vec![],
                    handler: Rc::new(move |k, _, _, _| {
                        if !busy.get() {
                            for d in end.consume(k) {
                                end.complete(k, d.completed(0, d.len)).unwrap();
                            }
                        }
                        XdrValue::Void
                    }),
                },
            )
            .unwrap();
        }
        dp.submit_out(&k, 2, b"cmd", 0).unwrap();
        dp.submit_out(&k, 2, b"data", 1).unwrap();
        dp.ring_doorbell(&k).unwrap();
        assert_eq!(dp.pending(), 2, "busy completer declined the drain");
        assert!(!dp.poll(&k).unwrap(), "survivor window not expired yet");
        busy.set(false);
        k.run_for(costs::DOORBELL_COALESCE_NS + 1);
        assert!(
            dp.poll(&k).unwrap(),
            "survivors must deadline-fire within one window"
        );
        assert_eq!(dp.reclaim(&k).len(), 2);
        assert!(dp.conserved());
    }

    #[test]
    fn exhaustion_rings_doorbell_then_backpressures() {
        let k = Kernel::new();
        let ch = channel();
        let dp = UrbDataPath::new(
            Rc::clone(&ch),
            Domain::Nucleus,
            "urb_drain",
            Rc::new(ShmRing::new("urb-submit", 8)),
            Rc::new(ShmRing::new("urb-giveback", 8)),
            Rc::new(SectorPool::with_capacity(512, 2)),
            DoorbellPolicy::with_watermark(64),
        )
        .unwrap();
        register_drain(&ch, dp.end(Domain::Decaf));
        dp.submit_out(&k, 2, &[1; 512], 0).unwrap();
        dp.submit_out(&k, 2, &[1; 512], 1).unwrap();
        // Pool exhausted: the path forces a drain and backpressures.
        let err = dp.submit_out(&k, 2, &[1; 512], 2);
        assert!(matches!(err, Err(XpcError::Backpressure(_))));
        // The caller reclaims and retries — now it fits.
        assert_eq!(dp.reclaim(&k).len(), 2);
        dp.submit_out(&k, 2, &[1; 512], 2).unwrap();
        dp.ring_doorbell(&k).unwrap();
        assert_eq!(dp.reclaim(&k).len(), 1);
        assert!(dp.conserved());
        assert_eq!(dp.stats().submitted, 3);
    }

    #[test]
    fn full_submit_ring_forces_doorbell_so_retry_succeeds() {
        let k = Kernel::new();
        let ch = channel();
        // Ring shallower than the watermark: posts park until full.
        let dp = UrbDataPath::new(
            Rc::clone(&ch),
            Domain::Nucleus,
            "urb_drain",
            Rc::new(ShmRing::new("urb-submit", 2)),
            Rc::new(ShmRing::new("urb-giveback", 8)),
            Rc::new(SectorPool::with_capacity(512, 16)),
            DoorbellPolicy::with_watermark(64),
        )
        .unwrap();
        register_drain(&ch, dp.end(Domain::Decaf));
        dp.submit_out(&k, 2, &[1; 64], 0).unwrap();
        dp.submit_out(&k, 2, &[1; 64], 1).unwrap();
        // Ring full: the refusal must force a drain, not just refuse.
        let err = dp.submit_out(&k, 2, &[1; 64], 2);
        assert!(matches!(err, Err(XpcError::Backpressure(_))));
        assert_eq!(dp.reclaim(&k).len(), 2, "forced doorbell drained the ring");
        dp.submit_out(&k, 2, &[1; 64], 2).unwrap();
        dp.ring_doorbell(&k).unwrap();
        assert_eq!(dp.reclaim(&k).len(), 1);
        assert!(dp.conserved());
        assert_eq!(dp.pool().in_use_sectors(), 0, "refused URB freed its run");
    }

    #[test]
    fn undersized_in_chain_rejected_at_submit_not_mid_drain() {
        // Regression: a `request_in` whose chain is shorter than `len`
        // used to be accepted at submit and only fail device-side,
        // mid-drain, as a surprise `TooLarge`. It must fail *here*, to
        // the caller, before anything is posted.
        let (k, dp) = path(64);
        let chain = dp.pool().alloc_sg(512).unwrap();
        let desc = UrbDescriptor::request_in(chain, 1024, 1, 5);
        let err = dp.submit(&k, desc);
        assert!(
            matches!(err, Err(XpcError::InvalidRequest(_))),
            "undersized chain must be an invalid request, got {err:?}"
        );
        assert_eq!(dp.pending(), 0, "nothing was posted");
        assert_eq!(dp.stats().submitted, 0);
        assert_eq!(dp.pool().in_use_sectors(), 0, "refused URB freed its chain");
        assert!(dp.conserved());
        // A dead chain is likewise refused (and cannot be double-freed).
        let err = dp.submit(&k, UrbDescriptor::request_in(chain, 100, 1, 6));
        assert!(matches!(err, Err(XpcError::InvalidRequest(_))));
        // A correctly-sized chain sails through the same entry point.
        let ok = dp.pool().alloc_sg(512).unwrap();
        dp.submit(&k, UrbDescriptor::request_in(ok, 512, 1, 7))
            .unwrap();
        dp.ring_doorbell(&k).unwrap();
        assert_eq!(dp.reclaim(&k).len(), 1);
        assert!(dp.conserved());
    }

    #[test]
    fn zero_length_transfers_allocate_no_sectors() {
        // The USB status-stage shape: a zero-length OUT rides an empty
        // chain — no sector burned, ledger still closed.
        let (k, dp) = path(1);
        dp.submit_out(&k, 2, &[], 11).unwrap();
        assert_eq!(
            dp.pool().stats().sectors_allocated,
            0,
            "ZLP pinned no sectors"
        );
        let done = dp.reclaim(&k);
        assert_eq!(done.len(), 1);
        assert!(done[0].ok());
        assert_eq!(done[0].actual, 0);
        assert!(dp.conserved());
        assert!(dp.pool().conserved());
        assert_eq!(dp.pool().in_use_sectors(), 0);
    }

    #[test]
    fn fragmented_pool_still_accepts_transfers_it_has_bytes_for() {
        // The headline bug: pin every other sector so no 2-sector
        // contiguous run exists, then submit multi-sector OUT URBs. The
        // SG path chains them instead of refusing.
        let (k, dp) = path(1);
        let pool = Rc::clone(dp.pool());
        let pins: Vec<_> = (0..64).map(|_| pool.alloc(1).unwrap()).collect();
        for (i, pin) in pins.iter().enumerate() {
            if i % 2 == 0 {
                pool.free(*pin).unwrap();
            }
        }
        assert_eq!(pool.available_sectors(), 32);
        let payload = vec![0xc3u8; 1024]; // needs 2 sectors
        dp.submit_out(&k, 2, &payload, 0).unwrap();
        let done = dp.reclaim(&k);
        assert_eq!(done.len(), 1, "fragmented pool served the transfer");
        assert!(done[0].ok());
        assert_eq!(pool.stats().frag_refusals, 0, "never refused");
        assert_eq!(k.stats().bytes_copied, 0, "chaining stays zero-copy");
        for (i, pin) in pins.iter().enumerate() {
            if i % 2 != 0 {
                pool.free(*pin).unwrap();
            }
        }
        assert!(dp.conserved());
        assert!(pool.conserved());
    }

    #[test]
    fn failed_transfers_report_errno_and_still_free_runs() {
        let k = Kernel::new();
        let ch = channel();
        let dp = UrbDataPath::new(
            Rc::clone(&ch),
            Domain::Nucleus,
            "urb_drain",
            Rc::new(ShmRing::new("urb-submit", 8)),
            Rc::new(ShmRing::new("urb-giveback", 8)),
            Rc::new(SectorPool::with_capacity(512, 8)),
            DoorbellPolicy::with_watermark(1),
        )
        .unwrap();
        let end = dp.end(Domain::Decaf);
        ch.register_proc(
            Domain::Decaf,
            ProcDef {
                name: "urb_drain".into(),
                arg_types: vec![],
                handler: Rc::new(move |k, _, _, _| {
                    for d in end.consume(k) {
                        end.complete(k, d.completed(-5, 0)).unwrap();
                    }
                    XdrValue::Void
                }),
            },
        )
        .unwrap();
        dp.submit_in(&k, 1, 512, 9).unwrap();
        let done = dp.reclaim(&k);
        assert_eq!(done[0].status, -5);
        assert!(done[0].data.is_empty(), "no payload on a failed IN");
        assert_eq!(dp.pool().in_use_sectors(), 0, "failed runs still reclaimed");
        assert!(dp.conserved());
    }
}
