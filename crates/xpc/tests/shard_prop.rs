//! Property tests for the sharded-channel facade: marshaling a field
//! set through N sharded channels must yield the same final `ObjHeap`
//! state as one channel, for arbitrary op orders — delta marshaling,
//! home pinning, and batched flushing included.

use std::collections::HashMap;
use std::rc::Rc;

use decaf_simkernel::Kernel;
use decaf_xdr::mask::MaskSet;
use decaf_xdr::{XdrSpec, XdrValue};
use decaf_xpc::{ChannelConfig, Domain, ProcDef, ShardPolicy, ShardedChannel};
use proptest::prelude::*;

fn spec() -> XdrSpec {
    XdrSpec::parse("struct st { int id; int value; int flag; };").unwrap()
}

/// One mutation: `(object index, field index, new value, deferred?)`.
type Op = (usize, usize, i32, bool);

const FIELDS: [&str; 2] = ["value", "flag"];

/// Runs an op sequence over a facade with `shards` channels and returns
/// the decaf-side state per object id, plus how many decaf-side copies
/// of each id exist across all shards (the home-pinning invariant).
fn run(
    shards: usize,
    n_objects: usize,
    ops: &[Op],
) -> (HashMap<i32, (i32, i32)>, HashMap<i32, usize>) {
    let kernel = Kernel::new();
    let sc = ShardedChannel::new(
        spec(),
        MaskSet::full(),
        ChannelConfig::kernel_user_batched(),
        Domain::Nucleus,
        Domain::Decaf,
        shards,
        ShardPolicy::FlowHash,
    );
    sc.register_proc(
        Domain::Decaf,
        ProcDef {
            name: "touch".into(),
            arg_types: vec!["st".into()],
            handler: Rc::new(|_, _, _, _| XdrValue::Void),
        },
    )
    .unwrap();

    let mut objects = Vec::new();
    for id in 0..n_objects {
        let addr = sc.alloc_shared(Domain::Nucleus, "st").unwrap();
        let home = sc.home_of(addr).unwrap();
        sc.heap(home, Domain::Nucleus)
            .borrow_mut()
            .set_scalar(addr, "id", XdrValue::Int(id as i32))
            .unwrap();
        objects.push((addr, home));
    }

    for (obj, field, value, deferred) in ops {
        let (addr, home) = objects[obj % n_objects];
        sc.heap(home, Domain::Nucleus)
            .borrow_mut()
            .set_scalar(addr, FIELDS[field % FIELDS.len()], XdrValue::Int(*value))
            .unwrap();
        if *deferred {
            sc.call_deferred(&kernel, Domain::Nucleus, "touch", &[Some(addr)], &[])
                .unwrap();
        } else {
            sc.call(&kernel, Domain::Nucleus, "touch", &[Some(addr)], &[])
                .unwrap();
        }
    }
    sc.flush_all(&kernel).unwrap();

    let mut state = HashMap::new();
    let mut copies = HashMap::new();
    for shard in 0..shards {
        let heap = sc.heap(shard, Domain::Decaf);
        let h = heap.borrow();
        let addrs: Vec<_> = h.iter().map(|(a, _)| a).collect();
        for a in addrs {
            let id = h.scalar(a, "id").unwrap().as_int().unwrap();
            let value = h.scalar(a, "value").unwrap().as_int().unwrap();
            let flag = h.scalar(a, "flag").unwrap().as_int().unwrap();
            state.insert(id, (value, flag));
            *copies.entry(id).or_insert(0) += 1;
        }
    }
    (state, copies)
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec((0usize..8, 0usize..2, any::<i32>(), any::<bool>()), 1..32)
}

proptest! {
    /// Delta round-trip equivalence: the same op order through 1, 2, 3
    /// and 4 shards converges every object to the same final state.
    #[test]
    fn sharded_delta_roundtrip_matches_single_channel(
        n_objects in 1usize..5,
        ops in ops_strategy(),
    ) {
        let (baseline, _) = run(1, n_objects, &ops);
        for shards in 2usize..5 {
            let (state, copies) = run(shards, n_objects, &ops);
            prop_assert_eq!(
                &state, &baseline,
                "{} shards diverged from the single channel", shards
            );
            // Home pinning: every object that crossed exists on exactly
            // one shard's decaf heap — its home.
            for (id, n) in &copies {
                prop_assert_eq!(*n, 1, "object {} marshaled on {} shards", id, n);
            }
        }
    }

    /// Aggregated facade stats are consistent with the work done: the
    /// sharded run marshals at least one object per touched id, and the
    /// per-shard sum of round trips equals the aggregate.
    #[test]
    fn sharded_stats_aggregate_consistently(
        shards in 1usize..5,
        ops in ops_strategy(),
    ) {
        let kernel = Kernel::new();
        let sc = ShardedChannel::new(
            spec(),
            MaskSet::full(),
            ChannelConfig::kernel_user_batched(),
            Domain::Nucleus,
            Domain::Decaf,
            shards,
            ShardPolicy::FlowHash,
        );
        sc.register_proc(
            Domain::Decaf,
            ProcDef {
                name: "touch".into(),
                arg_types: vec!["st".into()],
                handler: Rc::new(|_, _, _, _| XdrValue::Void),
            },
        )
        .unwrap();
        let addr = sc.alloc_shared(Domain::Nucleus, "st").unwrap();
        let home = sc.home_of(addr).unwrap();
        for (_, field, value, deferred) in &ops {
            sc.heap(home, Domain::Nucleus)
                .borrow_mut()
                .set_scalar(addr, FIELDS[field % FIELDS.len()], XdrValue::Int(*value))
                .unwrap();
            if *deferred {
                sc.call_deferred(&kernel, Domain::Nucleus, "touch", &[Some(addr)], &[]).unwrap();
            } else {
                sc.call(&kernel, Domain::Nucleus, "touch", &[Some(addr)], &[]).unwrap();
            }
        }
        sc.flush_all(&kernel).unwrap();
        let total = sc.stats();
        let per_shard_sum: u64 = (0..shards).map(|i| sc.shard_stats(i).round_trips).sum();
        prop_assert_eq!(total.round_trips, per_shard_sum);
        prop_assert_eq!(total.faults, 0);
        prop_assert!(total.full_objects + total.delta_objects >= 1);
        prop_assert_eq!(sc.pending_deferred(), 0);
    }
}
