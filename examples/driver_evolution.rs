//! Driver evolution: apply a new-field patch, re-slice, and classify the
//! 320-patch stream (Table 4, §5.2).
//!
//! Run with: `cargo run --example driver_evolution`

use decaf_core::slicer::access::RawAccess;
use decaf_core::slicer::evolve::{apply_new_field, NewField};
use decaf_core::slicer::{slice, CType, SliceConfig};
use decaf_core::xdr::mask::Direction;

fn main() {
    let source = decaf_core::drivers::DriverKind::E1000.minic_source();
    let plan = slice(source, &SliceConfig::default()).expect("slice");

    // A 2.6.27-era patch adds a field the decaf driver needs.
    let field = NewField {
        struct_name: "e1000_adapter".into(),
        field_name: "wol_enabled".into(),
        ty: CType::Int,
        decaf_accessed: true,
        access: RawAccess::RW,
    };
    let patched = apply_new_field(source, &plan, &field).expect("patch");
    println!("Patch applied: `int wol_enabled;` added to e1000_adapter,");
    println!("DECAF_RWVAR annotation injected into the first entry point.\n");

    // Re-run DriverSlicer: marshaling regenerates automatically.
    let plan2 = slice(&patched, &SliceConfig::default()).expect("re-slice");
    assert!(plan2
        .masks
        .includes("e1000_adapter", "wol_enabled", Direction::In));
    assert!(plan2
        .masks
        .includes("e1000_adapter", "wol_enabled", Direction::Out));
    println!("Re-sliced: wol_enabled now crosses the boundary in both directions.");
    println!(
        "Annotations: {} -> {} (one DECAF_RWVAR added)\n",
        plan.annotations, plan2.annotations
    );

    // The full Table 4 study.
    let study = decaf_core::experiments::table4();
    println!("Table 4 — lines changed by 320 upstream patches:");
    println!(
        "  driver nucleus        : {:>6}  (paper:  381)",
        study.total.nucleus_lines
    );
    println!(
        "  decaf driver          : {:>6}  (paper: 4690)",
        study.total.decaf_lines
    );
    println!(
        "  user/kernel interface : {:>6}  (paper:   23)",
        study.total.interface_changes
    );
}
