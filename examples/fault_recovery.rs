//! Fault isolation: a panicking decaf driver does not take the kernel
//! down; the decaf runtime restarts it and the driver keeps working.
//!
//! Run with: `cargo run --example fault_recovery`

use std::rc::Rc;

use decaf_core::simkernel::Kernel;
use decaf_core::xdr::XdrValue;
use decaf_core::xpc::{DecafRuntime, Domain, ProcDef, XpcError};

fn main() {
    let kernel = Kernel::new();
    let drv = decaf_core::drivers::e1000::decaf::install(&kernel, "eth0").expect("install");

    // Plant a buggy decaf handler (a null dereference in user code).
    drv.channel
        .register_proc(
            Domain::Decaf,
            ProcDef {
                name: "e1000_buggy_diag".into(),
                arg_types: vec![],
                handler: Rc::new(|_, _, _, _| panic!("NullPointerException in decaf driver")),
            },
        )
        .unwrap();

    // The kernel invokes it; the fault is contained in the XPC layer.
    let err = drv.nuc.upcall("e1000_buggy_diag", &[], &[]).unwrap_err();
    match &err {
        XpcError::DecafFault(msg) => println!("decaf driver fault caught: {msg}"),
        other => println!("unexpected: {other}"),
    }
    println!("kernel still running at t={} ns", kernel.now_ns());
    println!("channel faults recorded: {}", drv.channel.stats().faults);

    // Restart the decaf driver (clears its heap and tracker) and re-probe.
    let decaf_rt = DecafRuntime::new(kernel.clone(), Rc::clone(&drv.channel));
    decaf_rt.restart().expect("restart");
    println!("decaf driver restarted (restart #{})", decaf_rt.restarts());

    let ret = drv
        .nuc
        .upcall("e1000_probe", &[Some(drv.adapter)], &[])
        .expect("re-probe after restart");
    assert_eq!(ret, XdrValue::Int(0));
    println!("re-probe after restart: OK");

    // The device keeps serving traffic.
    kernel.netdev_open("eth0").expect("open");
    kernel.schedule_point();
    for _ in 0..10 {
        kernel
            .net_xmit(
                "eth0",
                decaf_core::simkernel::SkBuff::synthetic(800, 1, 0x0800),
            )
            .expect("xmit");
        kernel.schedule_point();
    }
    println!(
        "post-recovery traffic: {} packets",
        kernel.net_stats("eth0").rx_packets
    );
}
