//! Fragmentation ablation smoke: prints the first-fit vs buddy vs
//! buddy+SG sweep over adversarially fragmented sector pools and gates
//! the headline claim of the scatter-gather data path.
//!
//! Each cell installs the shmring uhci build with one pool allocation
//! mode, pins a pressure-point fraction of the sector pool as
//! *scattered* single-sector chains (the free map becomes singles —
//! plenty of bytes, no contiguity), then fires a burst of multi-sector
//! flash writes. The contiguity-requiring modes start refusing
//! transfers the pool has the bytes for (`frag_refusals` counts
//! exactly those); the chaining mode never does.
//!
//! The measurements and every per-cell invariant (zero CPU-copied
//! payload bytes, URB + pool conservation, no leaked sectors) live in
//! `decaf_core::experiments::frag_run`, the same code the published
//! table rows are built from, so this smoke and the numbers can never
//! diverge.
//!
//! Run with: `cargo run --release --example frag_ablation`

use decaf_core::experiments::{frag_ablation, FRAG_ATTEMPTS, FRAG_PRESSURES};

fn main() {
    println!(
        "fragmentation ablation: {} multi-sector writes per cell, pressures {:?}%",
        FRAG_ATTEMPTS, FRAG_PRESSURES
    );
    println!(
        "{:<10} {:>9} {:>9} {:>9} {:>10} {:>13} {:>10} {:>11} {:>12}",
        "mode",
        "pinned%",
        "attempts",
        "failures",
        "fail rate",
        "frag refusals",
        "exhausted",
        "copied B",
        "virt Mbit/s"
    );
    // `frag_ablation` itself asserts the acceptance gates: buddy+SG at
    // zero failures and zero frag refusals across the sweep, first-fit
    // driven into refusals while free bytes sufficed.
    let rows = frag_ablation();
    for r in &rows {
        println!(
            "{:<10} {:>9} {:>9} {:>9} {:>10.2} {:>13} {:>10} {:>11} {:>12.1}",
            r.label,
            r.pressure,
            r.attempts,
            r.failures,
            r.failure_rate(),
            r.frag_refusals,
            r.exhausted,
            r.bytes_copied,
            r.virtual_mbps()
        );
    }

    let worst_ff = rows
        .iter()
        .filter(|r| r.label == "first-fit" && r.failures > 0)
        .map(|r| r.pressure)
        .min()
        .expect("the gate in frag_ablation guarantees a refusing cell");
    println!(
        "first-fit starts refusing at {worst_ff}% pressure; buddy+SG sustains a zero \
         alloc-failure rate at every pressure point — a fragmented pool never refuses \
         a transfer it has the bytes for"
    );
}
