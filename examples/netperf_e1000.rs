//! netperf on the E1000, native vs decaf — the Table 3 experiment for
//! one driver, end to end.
//!
//! Run with: `cargo run --release --example netperf_e1000`
//!
//! `--trace <path>` writes a Chrome `trace_event` JSON capture of the
//! decaf run (open it at `chrome://tracing` or in Perfetto). Timestamps
//! are virtual, so same-seed captures are byte-identical.

use decaf_core::drivers::workloads;
use decaf_core::simkernel::decaf_trace::{chrome_trace_json, Tracer};
use decaf_core::simkernel::Kernel;

/// Parses an optional `--trace <path>` argument pair.
fn trace_arg() -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--trace" {
            return Some(args.next().expect("--trace requires a path"));
        }
    }
    None
}

fn main() {
    let trace_path = trace_arg();
    let seconds = 3;
    let pps = 4_000;
    let pkt = 1_500;

    // Native baseline.
    let kn = Kernel::new();
    let native = decaf_core::drivers::e1000::native::install(&kn, "eth0").expect("native");
    kn.netdev_open("eth0").expect("open");
    kn.schedule_point();
    let n = workloads::netperf_send(&kn, "eth0", seconds, pps, pkt).expect("netperf");

    // Decaf build, traced when asked. The tracer stamps every span with
    // the kernel's virtual clock and never charges time itself, so the
    // traced run's numbers match the untraced ones exactly.
    let kd = Kernel::new();
    let tracer = trace_path.as_ref().map(|_| {
        let t = Tracer::new();
        kd.set_tracer(Some(std::rc::Rc::clone(&t)));
        t
    });
    let decaf = decaf_core::drivers::e1000::decaf::install(&kd, "eth0").expect("decaf");
    kd.netdev_open("eth0").expect("open");
    kd.schedule_point();
    let init_crossings = decaf.crossings();
    let d = workloads::netperf_send(&kd, "eth0", seconds, pps, pkt).expect("netperf");

    if let (Some(path), Some(t)) = (&trace_path, &tracer) {
        std::fs::write(path, chrome_trace_json(&t.events())).expect("write trace");
        println!(
            "wrote {} trace events to {path} (load in chrome://tracing)",
            t.event_count()
        );
    }

    println!("E1000 netperf-send ({seconds} virtual s, {pps} pps, {pkt} B)");
    println!("                      native      decaf");
    println!(
        "throughput (Mb/s)   {:8.1}   {:8.1}",
        n.throughput_mbps(),
        d.throughput_mbps()
    );
    println!(
        "CPU utilization     {:7.1}%   {:7.1}%",
        n.cpu_util * 100.0,
        d.cpu_util * 100.0
    );
    println!(
        "init latency (ms)   {:8.3}   {:8.3}",
        native.init_latency_ns as f64 / 1e6,
        decaf.init_latency_ns as f64 / 1e6
    );
    println!("init crossings             -   {init_crossings:8}");
    println!(
        "relative perf       {:8.3}   (paper: 0.99-1.00)",
        d.throughput_mbps() / n.throughput_mbps()
    );
    println!(
        "watchdog upcalls during run: {} (one per 2 s)",
        decaf.crossings() - init_crossings
    );
}
