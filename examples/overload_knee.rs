//! Overload knee smoke: calibrates the open-loop rig's saturation
//! rate, sweeps every admission policy across offered rates from 0.4×
//! to 1.5× saturation, and prints the latency/goodput knee table.
//!
//! The measurement — and every invariant check (zero payload bytes
//! copied, URB descriptor/sector conservation, a closed admission
//! ledger, every async doorbell token settled, no kernel rule
//! violations) — lives in `decaf_core::experiments::overload_run` /
//! `overload_sweep`, the same functions the published table rows are
//! built from. Arrival schedules are seeded virtual-time Poisson and
//! burst processes: two runs print identical output.
//!
//! Run with: `cargo run --release --example overload_knee`

use decaf_core::experiments::{knee_verdict, overload_saturation_rate, overload_sweep};

fn main() {
    let sat = overload_saturation_rate();
    println!("calibrated saturation: {sat} req/s (virtual)");
    println!();
    println!(
        "{:<20} {:>6} {:>8} {:>8} {:>6} {:>6} {:>10} {:>10} {:>10} {:>10}",
        "policy",
        "rate%",
        "offered",
        "admitted",
        "rej",
        "shed",
        "goodput/s",
        "p50 µs",
        "p99 µs",
        "p999 µs"
    );
    let rows = overload_sweep();
    for r in &rows {
        println!(
            "{:<20} {:>6} {:>8} {:>8} {:>6} {:>6} {:>10} {:>10.1} {:>10.1} {:>10.1}",
            r.policy.name(),
            r.multiplier_pct,
            r.offered,
            r.admitted,
            r.rejected,
            r.shed,
            r.goodput_per_s,
            r.lat.p50_ns as f64 / 1e3,
            r.lat.p99_ns as f64 / 1e3,
            r.lat.p999_ns as f64 / 1e3,
        );
    }
    println!();
    let v = knee_verdict(&rows);
    println!(
        "unbounded p99 blowup past saturation: {:.1}×",
        v.unbounded_blowup
    );
    println!(
        "{} holds p99 within {:.1}× pre-knee at {:.0}% of peak goodput",
        v.bounded_policy.name(),
        v.bounded_ratio,
        v.goodput_fraction * 100.0
    );
    assert!(
        v.holds,
        "knee acceptance failed: blowup {:.1}× (need ≥10), bounded {:.1}× (need ≤3), \
         goodput {:.2} (need ≥0.8)",
        v.unbounded_blowup, v.bounded_ratio, v.goodput_fraction
    );
    println!("knee acceptance holds");
}
