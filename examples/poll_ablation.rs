//! Interrupt-vs-poll receive ablation smoke: drives the pool-less
//! shmring RX path one virtual second in both servicing modes at two
//! offered rates straddling the crossover (default 2k and 16k pkts/s),
//! then replays the full rate sweep.
//!
//! The measurement — and every invariant check (zero payload bytes
//! copied, no stranded descriptors, zero poll-mode doorbells, a single
//! monotone winner flip) — lives in
//! `decaf_core::experiments::rx_mode_run` / `rx_mode_sweep`, the same
//! functions the published table rows are built from, so this smoke and
//! the paper numbers can never diverge. Everything is deterministic
//! virtual time: two runs print identical output.
//!
//! Run with: `cargo run --release --example poll_ablation [low_pps high_pps]`

use decaf_core::drivers::support::RxMode;
use decaf_core::experiments::{rx_crossover_pps, rx_mode_run, rx_mode_sweep};

fn main() {
    let mut args = std::env::args().skip(1);
    let low: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2_000);
    let high: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(16_000);
    assert!(
        low < high,
        "rates must straddle the crossover: {low} < {high}"
    );
    println!("poll ablation: 1 virtual second at {low} and {high} pkts/s");

    for pps in [low, high] {
        let (interrupt_ns, _, interrupt_doorbells, _) = rx_mode_run(RxMode::Interrupt, pps);
        let (poll_ns, _, poll_doorbells, _) = rx_mode_run(RxMode::Poll, pps);
        println!(
            "  {pps:>6} pkts/s: interrupt {:.1} µs ({interrupt_doorbells} doorbells), \
             poll {:.1} µs ({poll_doorbells} doorbells)",
            interrupt_ns as f64 / 1e3,
            poll_ns as f64 / 1e3,
        );
        assert_eq!(poll_doorbells, 0, "poll mode rang a doorbell");
        if pps == low {
            assert!(
                interrupt_ns < poll_ns,
                "interrupt must win at {pps} pkts/s: {interrupt_ns} vs {poll_ns} ns"
            );
        } else {
            assert!(
                poll_ns < interrupt_ns,
                "poll must win at {pps} pkts/s: {poll_ns} vs {interrupt_ns} ns"
            );
        }
    }

    // The full sweep asserts the single monotone winner flip internally.
    let rows = rx_mode_sweep();
    let crossover = rx_crossover_pps(&rows).expect("crossover exists");
    println!("  crossover: poll-mode receive first wins at {crossover} pkts/s offered");
    println!("OK: zero-copy, zero poll doorbells and monotone crossover checks passed");
}
