//! Quickstart: slice a driver, load its decaf build, push traffic.
//!
//! Run with: `cargo run --example quickstart`

use decaf_core::simkernel::{Kernel, SkBuff};
use decaf_core::slicer::{slice, SliceConfig};
use decaf_core::xpc::Domain;

fn main() {
    // 1. DriverSlicer: partition the E1000 driver from its source.
    let source = decaf_core::drivers::DriverKind::E1000.minic_source();
    let plan = slice(source, &SliceConfig::default()).expect("slice");
    println!("== DriverSlicer ==");
    println!("kernel (nucleus) functions : {}", plan.kernel_fns.len());
    println!("decaf driver functions     : {}", plan.decaf_fns.len());
    println!("annotations in source      : {}", plan.annotations);
    println!(
        "upcall entry points        : {}",
        plan.user_entry_points.len()
    );
    println!(
        "functions moved to user    : {:.0}%",
        plan.user_fraction() * 100.0
    );

    // 2. Load the decaf build into a simulated kernel. The channel's XDR
    //    spec and field masks are the slicer's output.
    let kernel = Kernel::new();
    let drv = decaf_core::drivers::e1000::decaf::install(&kernel, "eth0").expect("install");
    println!("\n== insmod ==");
    println!(
        "init latency (virtual)     : {:.3} ms",
        drv.init_latency_ns as f64 / 1e6
    );
    println!("user/kernel crossings      : {}", drv.crossings());

    // 3. Bring the interface up and transmit: the data path never leaves
    //    the kernel.
    kernel.netdev_open("eth0").expect("open");
    kernel.schedule_point();
    let before = drv.crossings();
    for i in 0..100u32 {
        kernel
            .net_xmit("eth0", SkBuff::synthetic(1500, i as u8, 0x0800))
            .expect("xmit");
        kernel.schedule_point();
    }
    let stats = kernel.net_stats("eth0");
    println!("\n== traffic (loopback) ==");
    println!("tx packets                 : {}", stats.tx_packets);
    println!("rx packets                 : {}", stats.rx_packets);
    println!(
        "crossings during traffic   : {} (data path is kernel-only)",
        drv.crossings() - before
    );

    // 4. The shared adapter object lives in both domains; the nucleus
    //    sees what the decaf driver wrote.
    let heap = drv.channel.heap(Domain::Nucleus);
    let mac = heap.borrow().scalar(drv.adapter, "mac").unwrap().clone();
    println!(
        "\nMAC assembled by the decaf driver: {:02x?}",
        mac.as_opaque().unwrap()
    );
    assert!(kernel.violations().is_empty());
    println!("kernel rule violations     : 0");
}
