//! Sharded data-path stress smoke: drives the multi-queue e1000 build
//! at a shard count given on the command line (default 4) with a
//! netperf-shaped burst, against a shards=1 baseline on the identical
//! stream.
//!
//! The heavy lifting — and every invariant check (descriptor
//! conservation under completion steering, flow spreading, zero payload
//! marshaling, kernel-rule violations) — lives in
//! `decaf_core::experiments::shard_run`, the same measurement the shard
//! ablation rows are built from, so this smoke and the published
//! numbers can never diverge. On top, it gates the tentpole claims:
//! sharding must beat the baseline on virtual-time throughput without
//! moving the copy audit.
//!
//! Run with: `cargo run --release --example shard_stress [shards]`

use decaf_core::experiments::shard_run;

fn main() {
    let shards: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let (seconds, pps) = (2, 4_000);
    println!("shard stress: shards={shards}, {seconds}s x {pps}pps x 1500B");

    let row = shard_run(shards, seconds, pps);
    println!(
        "  shards={shards}: effective {:.1} µs, {:.1} Mb/s virtual",
        row.effective_ns as f64 / 1e3,
        row.virtual_mbps()
    );

    if shards > 1 {
        let base = shard_run(1, seconds, pps);
        println!(
            "  shards=1: effective {:.1} µs, {:.1} Mb/s virtual",
            base.effective_ns as f64 / 1e3,
            base.virtual_mbps()
        );
        assert_eq!(row.packets, base.packets, "identical offered stream");
        assert_eq!(
            row.bytes_copied, base.bytes_copied,
            "copy audit must not move with shard count"
        );
        assert!(
            row.virtual_mbps() > base.virtual_mbps(),
            "shards={shards} ({:.1} Mb/s) must beat shards=1 ({:.1} Mb/s)",
            row.virtual_mbps(),
            base.virtual_mbps()
        );
        println!(
            "  speedup: {:.2}x",
            base.effective_ns as f64 / row.effective_ns as f64
        );
    }
    println!("OK: conservation, steering, zero-marshal and copy-audit checks passed");
}
