//! MP3-style playback through the decaf ens1371: the decaf driver is
//! invoked only at stream start and end (paper §4.2: 15 calls).
//!
//! Run with: `cargo run --example sound_playback`

use decaf_core::drivers::workloads;
use decaf_core::simkernel::Kernel;

fn main() {
    let kernel = Kernel::new();
    let drv = decaf_core::drivers::ens1371::install_decaf(&kernel, "card0").expect("install");
    println!("insmod crossings            : {}", drv.crossings());

    let before = drv.crossings();
    let stats = workloads::mpg123(&kernel, "card0", 3).expect("playback");
    let during = drv.crossings() - before;

    println!("frames played               : {}", stats.ops);
    println!(
        "virtual time                : {:.2} s",
        stats.elapsed_ns as f64 / 1e9
    );
    println!(
        "CPU utilization             : {:.2}% (paper: ~0%)",
        stats.cpu_util * 100.0
    );
    println!("decaf calls during playback : {during} (open/close only; paper: 15)");
    println!(
        "DAC frames consumed         : {}",
        drv.dev.borrow().frames_played()
    );
    assert!(kernel.violations().is_empty());
}
