//! Storage shmring smoke: drives the `tar` write + streaming-read pair
//! through the uhci `install_shmring` build and prints the three-way
//! storage ablation. With a shard-count argument it instead drives the
//! **sharded multi-LUN** build at that width (the CI storage-sched job
//! runs `storage_smoke 4`).
//!
//! The heavy lifting — and every invariant check (URB conservation,
//! sector-run reclamation, zero kernel-rule violations, and the
//! tentpole claim that bulk `bytes_copied` is exactly zero under the
//! shmring hosting *and at every shard width*) — lives in
//! `decaf_core::experiments::storage_run` /
//! `decaf_core::experiments::storage_shard_run`, the same measurements
//! the ablation rows are built from, so this smoke and the published
//! numbers can never diverge. On top, it gates the ablation orderings:
//! shmring must beat both by-value hostings on marshaled bytes and
//! virtual CPU time, and a sharded run must beat shards=1 on the
//! parallel wall model.
//!
//! Run with: `cargo run --release --example storage_smoke [shards]`
//!
//! `--trace <path>` additionally drives one traced shmring tar run and
//! writes a Chrome `trace_event` JSON capture to `path` (open it at
//! `chrome://tracing` or in Perfetto). Timestamps are virtual, so
//! same-seed captures are byte-identical.

use decaf_core::experiments::{
    storage_ablation, storage_shard_run, STORAGE_FILES, STORAGE_LUNS, STORAGE_SECTORS_PER_FILE,
};
use decaf_core::simkernel::decaf_trace::{chrome_trace_json, Tracer};
use decaf_core::simkernel::Kernel;

/// Drives the shmring tar write + streaming-read pair once with a full
/// event tracer installed and writes the Chrome JSON capture.
fn traced_smoke(path: &str) {
    use decaf_core::drivers::workloads;
    let k = Kernel::new();
    let t = Tracer::new();
    k.set_tracer(Some(std::rc::Rc::clone(&t)));
    let _drv = decaf_core::drivers::uhci::install_shmring(&k, "uhci0").expect("uhci shmring");
    workloads::tar_to_flash(&k, "uhci0", STORAGE_FILES, STORAGE_SECTORS_PER_FILE).expect("tar out");
    workloads::tar_from_flash(&k, "uhci0", STORAGE_FILES, STORAGE_SECTORS_PER_FILE)
        .expect("tar in");
    std::fs::write(path, chrome_trace_json(&t.events())).expect("write trace");
    println!(
        "wrote {} trace events to {path} (load in chrome://tracing)",
        t.event_count()
    );
}

fn sharded_smoke(shards: usize) {
    println!(
        "storage shard smoke: {}-LUN tar write + streaming read, {} files x {} sectors, shards={}",
        STORAGE_LUNS, STORAGE_FILES, STORAGE_SECTORS_PER_FILE, shards
    );
    let rows: Vec<_> = [1, shards]
        .into_iter()
        .map(|n| storage_shard_run(n, STORAGE_FILES, STORAGE_SECTORS_PER_FILE))
        .collect();
    for row in &rows {
        println!(
            "  shards={:<2} used={:<2} urbs={:<4} eff={:<9.1}µs crit={:<9.1}µs dbell={:<3} copied={} virt={:.1}Mb/s",
            row.shards,
            row.shards_used,
            row.urbs,
            row.effective_ns as f64 / 1e3,
            row.shard_max_ns as f64 / 1e3,
            row.doorbells,
            row.bytes_copied,
            row.virtual_mbps(),
        );
    }
    let (one, n) = (&rows[0], &rows[1]);
    // bytes_copied == 0 is already asserted inside storage_shard_run for
    // every row; gate the parallel-speedup ordering on top.
    assert!(
        n.virtual_mbps() > one.virtual_mbps(),
        "shards={} ({:.1} Mb/s) must beat shards=1 ({:.1} Mb/s)",
        n.shards,
        n.virtual_mbps(),
        one.virtual_mbps()
    );
    println!(
        "OK: sharded storage queues hold (zero copies at both widths, {:.2}x parallel speedup)",
        one.effective_ns as f64 / n.effective_ns as f64
    );
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--trace") {
        let path = args
            .get(i + 1)
            .cloned()
            .expect("--trace requires a path argument");
        args.drain(i..=i + 1);
        traced_smoke(&path);
    }
    if let Some(shards) = args.first() {
        let shards: usize = shards.parse().expect("shard count argument");
        sharded_smoke(shards.max(2));
        return;
    }

    println!(
        "storage smoke: tar write + streaming read, {} files x {} sectors each way",
        STORAGE_FILES, STORAGE_SECTORS_PER_FILE
    );

    let rows = storage_ablation();
    for row in &rows {
        println!(
            "  {:<24} urbs={:<3} payload={:<6} marshaled={:<7} RT={:<3} dbell={:<2} copied={:<6} virt={:.1}µs",
            row.label,
            row.urbs,
            row.payload_bytes,
            row.marshaled_bytes,
            row.round_trips,
            row.doorbells,
            row.bytes_copied,
            row.virtual_ns as f64 / 1e3,
        );
    }

    let (copy, batched, shm) = (&rows[0], &rows[1], &rows[2]);
    assert_eq!(
        shm.bytes_copied, 0,
        "shmring bulk payloads must cross as descriptor traffic only"
    );
    assert!(
        shm.marshaled_bytes < batched.marshaled_bytes && shm.marshaled_bytes < copy.marshaled_bytes,
        "shmring must keep payloads out of the marshaler"
    );
    assert!(
        shm.virtual_ns < batched.virtual_ns && batched.virtual_ns < copy.virtual_ns,
        "each hosting must beat the one below it on virtual CPU time"
    );
    println!(
        "OK: zero-copy storage path holds ({} B copied vs {} B by value, {:.1}x virtual speedup)",
        shm.bytes_copied,
        copy.bytes_copied,
        copy.virtual_ns as f64 / shm.virtual_ns as f64
    );
}
