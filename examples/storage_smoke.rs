//! Storage shmring smoke: drives the `tar` write + streaming-read pair
//! through the uhci `install_shmring` build and prints the three-way
//! storage ablation.
//!
//! The heavy lifting — and every invariant check (URB conservation,
//! sector-run reclamation, zero kernel-rule violations, and the
//! tentpole claim that bulk `bytes_copied` is exactly zero under the
//! shmring hosting) — lives in
//! `decaf_core::experiments::storage_run`, the same measurement the
//! storage ablation rows are built from, so this smoke and the
//! published numbers can never diverge. On top, it gates the ablation
//! ordering: shmring must beat both by-value hostings on marshaled
//! bytes and virtual CPU time.
//!
//! Run with: `cargo run --release --example storage_smoke`

use decaf_core::experiments::{storage_ablation, STORAGE_FILES, STORAGE_SECTORS_PER_FILE};

fn main() {
    println!(
        "storage smoke: tar write + streaming read, {} files x {} sectors each way",
        STORAGE_FILES, STORAGE_SECTORS_PER_FILE
    );

    let rows = storage_ablation();
    for row in &rows {
        println!(
            "  {:<24} urbs={:<3} payload={:<6} marshaled={:<7} RT={:<3} dbell={:<2} copied={:<6} virt={:.1}µs",
            row.label,
            row.urbs,
            row.payload_bytes,
            row.marshaled_bytes,
            row.round_trips,
            row.doorbells,
            row.bytes_copied,
            row.virtual_ns as f64 / 1e3,
        );
    }

    let (copy, batched, shm) = (&rows[0], &rows[1], &rows[2]);
    assert_eq!(
        shm.bytes_copied, 0,
        "shmring bulk payloads must cross as descriptor traffic only"
    );
    assert!(
        shm.marshaled_bytes < batched.marshaled_bytes && shm.marshaled_bytes < copy.marshaled_bytes,
        "shmring must keep payloads out of the marshaler"
    );
    assert!(
        shm.virtual_ns < batched.virtual_ns && batched.virtual_ns < copy.virtual_ns,
        "each hosting must beat the one below it on virtual CPU time"
    );
    println!(
        "OK: zero-copy storage path holds ({} B copied vs {} B by value, {:.1}x virtual speedup)",
        shm.bytes_copied,
        copy.bytes_copied,
        copy.virtual_ns as f64 / shm.virtual_ns as f64
    );
}
