//! Trace-validation smoke — what the CI `trace-validate` job runs.
//!
//! Drives a traced netperf (sharded e1000, shards=4) and a traced
//! multi-LUN tar (sharded uhci) and gates the observability layer's
//! three load-bearing claims:
//!
//! 1. **The export is well-formed.** The Chrome `trace_event` JSON
//!    parses, every event carries `ts`/`ph`/`pid`/`tid`, and the event
//!    stream satisfies span discipline (every `B` has its `E`, brackets
//!    nest per track, timestamps never run backwards).
//! 2. **The accounting reconciles.** With the whole run wrapped in one
//!    root span, every nanosecond the workload charges lands in some
//!    span's self-time: summed leaf self-time per CPU class must match
//!    the clock's charged totals within 1%.
//! 3. **Zero observer effect.** The identical workload replayed with
//!    tracing disabled finishes at the *same* virtual instant with the
//!    *same* charged totals — observing a run never changes it.
//!
//! Run with: `cargo run --release --example trace_smoke`

use decaf_core::simkernel::decaf_trace::{
    chrome_trace_json, validate_chrome_json, validate_nesting, CostClass, Tracer,
};
use decaf_core::simkernel::Kernel;
use std::rc::Rc;

/// Charged totals of one finished run, per CPU class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RunTotals {
    now_ns: u64,
    kernel_busy_ns: u64,
    user_busy_ns: u64,
}

/// Runs `workload` on a fresh kernel, optionally under a full tracer
/// whose root span brackets everything the run charges.
fn run(traced: bool, workload: impl Fn(&Kernel)) -> (Option<Rc<Tracer>>, RunTotals) {
    let kernel = Kernel::new();
    let tracer = traced.then(|| {
        let t = Tracer::new();
        kernel.set_tracer(Some(Rc::clone(&t)));
        t
    });
    {
        let _root = kernel.trace_span("smoke", "run");
        workload(&kernel);
    }
    let snap = kernel.snapshot();
    (
        tracer,
        RunTotals {
            now_ns: kernel.now_ns(),
            kernel_busy_ns: snap.kernel_busy_ns,
            user_busy_ns: snap.user_busy_ns,
        },
    )
}

/// Asserts |a - b| <= 1% of b (the reconciliation tolerance).
fn within_one_percent(what: &str, a: u64, b: u64) {
    let diff = a.abs_diff(b);
    assert!(
        diff * 100 <= b,
        "{what}: leaf self-time {a} vs charged {b} (off by {diff} ns, > 1%)"
    );
}

/// Runs one workload traced and untraced and gates all three claims.
fn check(name: &str, workload: impl Fn(&Kernel)) {
    let (tracer, traced_totals) = run(true, &workload);
    let tracer = tracer.expect("traced run installs a tracer");
    let (_, plain_totals) = run(false, &workload);

    // Claim 3: zero observer effect — identical virtual end time and
    // charged totals with and without the tracer installed.
    assert_eq!(
        traced_totals, plain_totals,
        "{name}: tracing changed the run's virtual-time accounting"
    );

    // Claim 1: well-formed export.
    let events = tracer.events();
    assert!(!events.is_empty(), "{name}: traced run recorded no events");
    let json = chrome_trace_json(&events);
    let n = validate_chrome_json(&json).expect("chrome JSON invalid");
    assert_eq!(n, events.len(), "{name}: serialized event count mismatch");
    validate_nesting(&events).expect("span nesting violated");
    assert_eq!(tracer.open_span_count(), 0, "{name}: spans left open");
    assert_eq!(tracer.open_request_count(), 0, "{name}: requests left open");

    // Claim 2: the accounting reconciles. Every charge was observed...
    let cov = tracer.coverage();
    assert_eq!(
        cov.observed(CostClass::Kernel),
        traced_totals.kernel_busy_ns,
        "{name}: kernel-class charges escaped the tracer"
    );
    assert_eq!(
        cov.observed(CostClass::User),
        traced_totals.user_busy_ns,
        "{name}: user-class charges escaped the tracer"
    );
    // ...and (with the root span bracketing the run) leaf self-times
    // sum back to the charged totals within 1%.
    within_one_percent(
        name,
        tracer.leaf_self_ns(CostClass::Kernel),
        traced_totals.kernel_busy_ns,
    );
    within_one_percent(
        name,
        tracer.leaf_self_ns(CostClass::User),
        traced_totals.user_busy_ns,
    );

    println!(
        "{name}: {} events, {} B JSON, kernel {} µs / user {} µs reconciled, \
         coverage {:.1}%",
        events.len(),
        json.len(),
        traced_totals.kernel_busy_ns / 1_000,
        traced_totals.user_busy_ns / 1_000,
        cov.fraction() * 100.0
    );
}

fn main() {
    check("netperf shards=4", |k| {
        let drv = decaf_core::drivers::e1000::decaf::install_sharded(k, "eth0", 4)
            .expect("sharded e1000 installs");
        k.netdev_open("eth0").expect("open");
        k.schedule_point();
        decaf_core::drivers::workloads::netperf_send(k, "eth0", 1, 2_000, 1500).expect("netperf");
        drv.channels.flush_all(k).expect("final flush");
        drv.channels.harvest_all(k);
    });

    check("tar multi-LUN", |k| {
        let _drv = decaf_core::drivers::uhci::install_sharded(k, "uhci0", 4).expect("sharded uhci");
        decaf_core::drivers::workloads::tar_to_flash_luns(k, "uhci0", 4, 2, 16).expect("tar out");
        decaf_core::drivers::workloads::tar_from_flash_luns(k, "uhci0", 4, 2, 16).expect("tar in");
    });

    // A flame summary for the record: where the sharded netperf run's
    // nanoseconds went, leaf-attributed (DESIGN.md captures one).
    let (tracer, _) = run(true, |k| {
        let drv = decaf_core::drivers::e1000::decaf::install_sharded(k, "eth0", 4)
            .expect("sharded e1000 installs");
        k.netdev_open("eth0").expect("open");
        k.schedule_point();
        decaf_core::drivers::workloads::netperf_send(k, "eth0", 1, 2_000, 1500).expect("netperf");
        drv.channels.flush_all(k).expect("final flush");
        drv.channels.harvest_all(k);
    });
    print!("\n{}", tracer.expect("traced").flame_summary());

    println!("\nOK: traces validate, accounting reconciles, observer effect is zero");
}
