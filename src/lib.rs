//! Workspace facade for the Decaf Drivers reproduction.
//!
//! The substance lives in the `crates/` workspace members; this crate
//! exists so the repository-level `tests/` and `examples/` directories
//! build against [`decaf_core`]. See `DESIGN.md` for the architecture
//! and `README.md` for build and bench instructions.

#![forbid(unsafe_code)]

pub use decaf_core;
