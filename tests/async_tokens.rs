//! Property test for the completion-token lifecycle on the async
//! transport.
//!
//! Generates arbitrary interleavings of token launches, virtual-time
//! advances, deadline polls, flushes, harvests, deadline-wakeup *timer
//! arming* and mid-stream shard recoveries (either end failing) against
//! a sharded async channel, and asserts for every sequence:
//!
//! * **exactly-once harvest** — no token is ever resolved twice, and
//!   every token the run issues ends the run either harvested or
//!   cancelled, never both, never neither;
//! * **conservation** — `tokens_issued == tokens_harvested +
//!   tokens_cancelled` with zero tokens outstanding after the final
//!   flush + harvest, including across `recover_shard`;
//! * **wakeup-timer safety** — a `recover_shard` racing an
//!   armed-but-unfired deadline-wakeup timer must never let the timer
//!   fire destructively against the reset end: a stale fire declines
//!   and re-arms, requeued calls keep their tokens when the timer later
//!   flushes them, and no timer-driven flush faults or double-applies,
//!   whatever order arm / fault / fire land in.
//!
//! Runs under the offline proptest shim (64 deterministic cases); the
//! registry `proptest` crate is a drop-in replacement with shrinking.

use std::collections::HashSet;
use std::rc::Rc;

use decaf_core::simkernel::Kernel;
use decaf_core::xdr::mask::MaskSet;
use decaf_core::xdr::{XdrSpec, XdrValue};
use decaf_core::xpc::{ChannelConfig, Domain, ProcDef, ShardPolicy, ShardedChannel};
use proptest::prelude::*;

/// Shards every generated sequence runs against.
const SHARDS: usize = 3;

/// One step of a generated interleaving.
#[derive(Debug, Clone)]
enum Op {
    /// Launch an async scalar-only call pinned to one shard.
    Launch(usize),
    /// Advance virtual time (lets coalescing deadlines expire).
    Advance(u64),
    /// Poll every shard's adaptive-batching deadline.
    FlushDue,
    /// Force-flush every shard's parked queue.
    FlushAll,
    /// Harvest every shard's launched batches.
    Harvest,
    /// Fail one end of one shard and recover it. `true` fails the decaf
    /// end (parked nucleus calls requeue, keeping their tokens); `false`
    /// fails the nucleus end (its parked calls cancel).
    Recover(usize, bool),
    /// Arm the per-shard deadline-wakeup timers (idempotent). Once
    /// armed, `Advance` can fire flushes from timer context — including
    /// timers armed *before* a `Recover` that fire after it, the
    /// stale-timer-versus-reset-end race this suite explores.
    ArmWakeups,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..SHARDS).prop_map(Op::Launch),
        (1u64..200_000).prop_map(Op::Advance),
        Just(Op::FlushDue),
        Just(Op::FlushAll),
        Just(Op::Harvest),
        ((0usize..SHARDS), any::<bool>()).prop_map(|(s, decaf)| Op::Recover(s, decaf)),
        Just(Op::ArmWakeups),
    ]
}

/// Replays one generated interleaving and checks the token ledger.
fn run_ops(ops: &[Op]) {
    let kernel = Kernel::new();
    let sc = ShardedChannel::new(
        XdrSpec::parse("struct st { int id; int value; };").unwrap(),
        MaskSet::full(),
        ChannelConfig::kernel_user_async(),
        Domain::Nucleus,
        Domain::Decaf,
        SHARDS,
        ShardPolicy::FlowHash,
    );
    sc.register_proc(
        Domain::Decaf,
        ProcDef {
            name: "ping".into(),
            arg_types: vec![],
            handler: Rc::new(|_, _, _, _| XdrValue::Int(1)),
        },
    )
    .unwrap();

    // Token IDs are per-shard counters: the exactly-once ledger keys on
    // (shard, token). Scalar-only calls go straight to a chosen shard's
    // channel so the issuing shard is explicit, not steered.
    let mut issued: HashSet<(usize, u64)> = HashSet::new();
    let mut resolved: HashSet<(usize, u64)> = HashSet::new();
    let mut cancelled_count = 0u64;
    let collect = |resolved: &mut HashSet<(usize, u64)>| {
        for i in 0..SHARDS {
            for tok in sc.shard(i).harvest(&kernel) {
                prop_assert!(
                    resolved.insert((i, tok.0)),
                    "token {} harvested twice on shard {i} in {ops:?}",
                    tok.0
                );
            }
        }
    };
    for op in ops {
        match *op {
            Op::Launch(shard) => {
                let token = sc
                    .shard(shard)
                    .call_async(&kernel, Domain::Nucleus, "ping", &[], &[])
                    .unwrap();
                prop_assert!(
                    issued.insert((shard, token.0)),
                    "token {} issued twice on shard {shard} in {ops:?}",
                    token.0
                );
            }
            Op::Advance(ns) => kernel.run_for(ns),
            Op::FlushDue => {
                sc.flush_if_due(&kernel).unwrap();
            }
            Op::FlushAll => sc.flush_all(&kernel).unwrap(),
            Op::Harvest => collect(&mut resolved),
            Op::Recover(shard, decaf_end) => {
                // Harvest first so recovery's internal harvest resolves
                // nothing invisibly; then the chosen end dies. A failed
                // nucleus end cancels its parked calls' tokens; a failed
                // decaf end requeues them under their original tokens.
                collect(&mut resolved);
                let before = sc.shard_stats(shard).tokens_cancelled;
                let failed = if decaf_end {
                    Domain::Decaf
                } else {
                    Domain::Nucleus
                };
                sc.recover_shard(&kernel, shard, failed).unwrap();
                cancelled_count += sc.shard_stats(shard).tokens_cancelled - before;
            }
            Op::ArmWakeups => sc.arm_deadline_wakeups(&kernel),
        }
    }
    // Let any still-armed wakeup timer fire before the reckoning: a
    // stale timer that survived the last recovery must decline or flush
    // cleanly — never fire destructively against the reset end.
    kernel.run_for(1_000_000);
    sc.flush_all(&kernel).unwrap();
    collect(&mut resolved);

    // Every issued token ended exactly one way: harvested (collected by
    // this test) or cancelled (counted at its recovery), never both.
    let s = sc.stats();
    prop_assert_eq!(s.tokens_issued, issued.len() as u64, "{ops:?}");
    prop_assert_eq!(
        s.tokens_issued,
        s.tokens_harvested + s.tokens_cancelled,
        "token ledger does not close in {ops:?}"
    );
    prop_assert_eq!(s.tokens_harvested, resolved.len() as u64, "{ops:?}");
    prop_assert_eq!(s.tokens_cancelled, cancelled_count, "{ops:?}");
    prop_assert_eq!(sc.tokens_outstanding(), 0, "{ops:?}");
    for key in &resolved {
        prop_assert!(issued.contains(key), "phantom token {key:?} in {ops:?}");
    }
    // Timer-driven flushes (deadline wakeups armed mid-sequence) ride
    // the same ledger: none may fault or trip a kernel-context check.
    prop_assert_eq!(sc.stats().faults, 0, "{ops:?}");
    prop_assert!(
        kernel.violations().is_empty(),
        "violations {:?} in {ops:?}",
        kernel.violations()
    );
}

proptest! {
    #[test]
    fn token_ledger_closes_under_arbitrary_interleavings(
        ops in proptest::collection::vec(op_strategy(), 1..48),
    ) {
        run_ops(&ops);
    }
}
