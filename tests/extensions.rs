//! Tests for the paper's secondary mechanisms: incremental conversion
//! through the driver library (§5.3), the sound-core locking change
//! (§3.1.3), the GC-finalizer analogue (§5.1), UDP small-packet behaviour
//! (§4.2), and DriverSlicer invariants across all five drivers.

use std::rc::Rc;

#[path = "fault_harness/mod.rs"]
mod fault_harness;

use decaf_core::drivers::DriverKind;
use decaf_core::simkernel::sound::SoundLockMode;
use decaf_core::simkernel::{Kernel, ViolationKind};
use decaf_core::slicer::callgraph::CallGraph;
use decaf_core::slicer::{parse, slice, SliceConfig};
use decaf_core::xdr::mask::Direction;
use decaf_core::xdr::XdrValue;
use decaf_core::xpc::{ChannelConfig, Domain, ProcDef, SharedObject, XpcChannel};

/// §5.3: "when migrating code to Java, it is convenient to move one
/// function at a time and then test the system" — the same entry point
/// can execute as user-level C (driver library) first, then as managed
/// code (decaf driver), with identical observable behaviour.
#[test]
fn incremental_conversion_library_then_decaf() {
    let spec = decaf_core::xdr::XdrSpec::parse("struct st { int calls; int value; };").unwrap();
    let run = |target: Domain| -> (i32, i32) {
        let kernel = Kernel::new();
        let ch = Rc::new(XpcChannel::new(
            spec.clone(),
            decaf_core::xdr::mask::MaskSet::full(),
            // Library staging: same process, still C → no cross-language
            // conversion cost; Decaf: full configuration.
            if target == Domain::Library {
                ChannelConfig {
                    cross_language: false,
                    transport: decaf_core::xpc::TransportKind::InProc,
                    delta: false,
                    ..ChannelConfig::kernel_user()
                }
            } else {
                ChannelConfig::kernel_user()
            },
            Domain::Nucleus,
            target,
        ));
        // The *same logic*, registered at whichever user-level domain is
        // hosting it during the migration.
        ch.register_proc(
            target,
            ProcDef {
                name: "configure".into(),
                arg_types: vec!["st".into()],
                handler: Rc::new(move |_, ch, args, scalars| {
                    let obj = args[0].unwrap();
                    let heap = ch.heap(target);
                    let mut h = heap.borrow_mut();
                    let calls = h.scalar(obj, "calls").unwrap().as_int().unwrap();
                    h.set_scalar(obj, "calls", XdrValue::Int(calls + 1))
                        .unwrap();
                    h.set_scalar(
                        obj,
                        "value",
                        XdrValue::Int(scalars[0].as_int().unwrap() * 2),
                    )
                    .unwrap();
                    XdrValue::Int(0)
                }),
            },
        )
        .unwrap();
        let obj = ch.alloc_shared(Domain::Nucleus, "st").unwrap();
        ch.call(
            &kernel,
            Domain::Nucleus,
            "configure",
            &[Some(obj)],
            &[XdrValue::Int(21)],
        )
        .unwrap();
        let heap = ch.heap(Domain::Nucleus);
        let h = heap.borrow();
        (
            h.scalar(obj, "calls").unwrap().as_int().unwrap(),
            h.scalar(obj, "value").unwrap().as_int().unwrap(),
        )
    };
    // "eliminate any new bugs in our Java implementation by comparing its
    // behavior to that of the original C code".
    let c_version = run(Domain::Library);
    let managed_version = run(Domain::Decaf);
    assert_eq!(c_version, managed_version);
    assert_eq!(c_version, (1, 42));
}

/// §3.1.3: with the *original* spinlock-holding sound core, invoking a
/// blocking decaf driver records a violation; with the paper's
/// mutex-based core it is clean. This is why they modified the kernel.
#[test]
fn sound_core_spinlock_ablation() {
    for (mode, expect_violation) in [
        (SoundLockMode::Mutex, false),
        (SoundLockMode::Spinlock, true),
    ] {
        let k = Kernel::new();
        let _drv = decaf_core::drivers::ens1371::install_decaf(&k, "card0").unwrap();
        k.snd_set_lock_mode("card0", mode).unwrap();
        k.clear_violations();
        let _ = k.snd_pcm_open("card0");
        let has_violation = k.violations().iter().any(|v| {
            matches!(
                v.kind,
                ViolationKind::BlockingInAtomic | ViolationKind::UpcallInAtomic
            )
        });
        assert_eq!(
            has_violation,
            expect_violation,
            "mode {mode:?}: violations {:?}",
            k.violations()
        );
        let _ = k.snd_pcm_close("card0");
    }
}

/// §4.2: E1000 UDP with 1-byte messages — throughput parity with native,
/// the decaf build works at the smallest packet sizes too.
#[test]
fn e1000_udp_one_byte_messages() {
    let run = |decaf: bool| {
        let k = Kernel::new();
        if decaf {
            let _ = decaf_core::drivers::e1000::decaf::install(&k, "eth0").unwrap();
        } else {
            let _ = decaf_core::drivers::e1000::native::install(&k, "eth0").unwrap();
        }
        k.netdev_open("eth0").unwrap();
        k.schedule_point();
        decaf_core::drivers::workloads::netperf_send(&k, "eth0", 1, 2_000, 1).unwrap()
    };
    let native = run(false);
    let decaf = run(true);
    assert_eq!(native.ops, decaf.ops, "same packet count");
    let ratio = decaf.ops as f64 / native.ops as f64;
    assert!((0.99..=1.01).contains(&ratio));
    // CPU is "slightly higher" for decaf in the paper: allow equal or a
    // bit above, never lower by more than noise.
    assert!(decaf.cpu_util >= native.cpu_util * 0.95);
}

/// Partition invariants that must hold for every driver source:
/// completeness, closure of the kernel set, masks referring to real
/// fields, and entry points living in the user partition.
#[test]
fn slicer_invariants_hold_for_all_drivers() {
    for kind in DriverKind::all() {
        let program = parse::parse(kind.minic_source()).unwrap();
        let plan = slice(kind.minic_source(), &SliceConfig::default()).unwrap();

        // Completeness: every function is placed exactly once.
        let placed = plan.kernel_fns.len() + plan.library_fns.len() + plan.decaf_fns.len();
        assert_eq!(placed, program.functions.len(), "{}", kind.name());

        // Closure: a kernel function never calls a user function except
        // through an upcall entry point.
        let graph = CallGraph::build(&program);
        let user: std::collections::HashSet<_> = plan.user_fns.iter().map(String::as_str).collect();
        let entry: std::collections::HashSet<_> = plan
            .user_entry_points
            .iter()
            .map(|e| e.name.as_str())
            .collect();
        for kfn in &plan.kernel_fns {
            for callee in graph.calls.get(kfn).into_iter().flatten() {
                if user.contains(callee.as_str()) {
                    assert!(
                        entry.contains(callee.as_str()),
                        "{}: kernel `{kfn}` calls user `{callee}` without an entry point",
                        kind.name()
                    );
                }
            }
        }

        // Masks only name fields that exist in their structs.
        for s in &plan.boundary_structs {
            if let Some(mask) = plan.masks.mask(s) {
                let def = program.find_struct(s).unwrap();
                for (field, _) in mask.iter() {
                    assert!(
                        def.fields.iter().any(|f| f.name == field),
                        "{}: mask field `{s}.{field}` does not exist",
                        kind.name()
                    );
                }
            }
        }

        // Upcall entry points are user functions; downcall entry points
        // are kernel functions.
        for ep in &plan.user_entry_points {
            assert!(
                user.contains(ep.name.as_str()),
                "{}: {}",
                kind.name(),
                ep.name
            );
        }
        for ep in &plan.kernel_entry_points {
            assert!(
                plan.kernel_fns.contains(&ep.name),
                "{}: {}",
                kind.name(),
                ep.name
            );
        }
    }
}

/// The masks of every driver spec transfer at least one field in each
/// direction (otherwise the split driver could not communicate results).
#[test]
fn every_driver_has_bidirectional_masks() {
    for kind in DriverKind::all() {
        let plan = slice(kind.minic_source(), &SliceConfig::default()).unwrap();
        let program = parse::parse(kind.minic_source()).unwrap();
        let mut any_in = false;
        let mut any_out = false;
        for s in &plan.boundary_structs {
            let def = program.find_struct(s).unwrap();
            for f in &def.fields {
                any_in |= plan.masks.includes(s, &f.name, Direction::In);
                any_out |= plan.masks.includes(s, &f.name, Direction::Out);
            }
        }
        assert!(any_in, "{}: nothing crosses inward", kind.name());
        assert!(any_out, "{}: nothing crosses outward", kind.name());
    }
}

/// Tentpole acceptance: on the *same* repeated-configuration call
/// sequence, the `Batched` transport + delta marshaling yields strictly
/// fewer one-way crossings and marshaled bytes than the seed `InProc`
/// per-call path — and the middle layer (delta alone) already cuts
/// bytes without changing crossing counts.
#[test]
fn batched_delta_transport_beats_seed_inproc_path() {
    let rows = decaf_core::experiments::transport_ablation();
    assert_eq!(rows.len(), 3);
    let (seed, delta, batch) = (&rows[0], &rows[1], &rows[2]);

    assert!(
        batch.one_way_crossings < seed.one_way_crossings,
        "batched {} vs seed {} one-way crossings",
        batch.one_way_crossings,
        seed.one_way_crossings
    );
    assert!(
        batch.bytes_in < seed.bytes_in,
        "batched {} vs seed {} bytes in",
        batch.bytes_in,
        seed.bytes_in
    );
    assert!(
        batch.virtual_ns < seed.virtual_ns,
        "batching + delta must also cost less virtual time"
    );
    // Delta alone: same crossings, fewer bytes.
    assert_eq!(delta.one_way_crossings, seed.one_way_crossings);
    assert!(delta.bytes_in < seed.bytes_in);
    // The batched flushes actually carried the deferred register writes.
    assert!(batch.flushes > 0 && batch.batched_calls >= 3 * batch.flushes);
}

/// All five decaf driver builds run their control paths over the batched
/// transport (the `Transport` trait's third implementation), and their
/// initialization actually exercises it: every build defers at least one
/// posted register write into a batched flush.
#[test]
fn all_five_decaf_builds_use_batched_transport() {
    use decaf_core::xpc::TransportKind;
    let k = Kernel::new();
    let checks: Vec<(&str, TransportKind, u64)> = vec![
        {
            let d = decaf_core::drivers::e1000::decaf::install(&k, "eth0").unwrap();
            (
                "E1000",
                d.channel.transport_kind(),
                d.channel.stats().batched_calls,
            )
        },
        {
            let d = decaf_core::drivers::rtl8139::install_decaf(&k, "eth1").unwrap();
            (
                "8139too",
                d.channel.transport_kind(),
                d.channel.stats().batched_calls,
            )
        },
        {
            let d = decaf_core::drivers::ens1371::install_decaf(&k, "card0").unwrap();
            (
                "ens1371",
                d.channel.transport_kind(),
                d.channel.stats().batched_calls,
            )
        },
        {
            let d = decaf_core::drivers::uhci::install_decaf(&k, "uhci0").unwrap();
            (
                "uhci-hcd",
                d.channel.transport_kind(),
                d.channel.stats().batched_calls,
            )
        },
        {
            let d = decaf_core::drivers::psmouse::install_decaf(&k, "mouse0").unwrap();
            (
                "psmouse",
                d.channel.transport_kind(),
                d.channel.stats().batched_calls,
            )
        },
    ];
    for (name, kind, batched) in checks {
        assert_eq!(kind, TransportKind::Batched, "{name} transport");
        assert!(batched > 0, "{name} deferred no calls during init");
    }
}

/// SharedObject guards compose with real driver channels: allocating a
/// scratch object for a one-off diagnostic call and dropping it leaks
/// nothing.
#[test]
fn shared_object_guard_with_real_driver() {
    let k = Kernel::new();
    let drv = decaf_core::drivers::e1000::decaf::install(&k, "eth0").unwrap();
    let before = drv.channel.heap(Domain::Nucleus).borrow().len();
    {
        let scratch =
            SharedObject::new(Rc::clone(&drv.channel), Domain::Nucleus, "e1000_tx_ring").unwrap();
        assert!(drv
            .channel
            .heap(Domain::Nucleus)
            .borrow()
            .contains(scratch.addr()));
    }
    assert_eq!(drv.channel.heap(Domain::Nucleus).borrow().len(), before);
}

/// The PR 2 acceptance claim at workload level: a netperf-shaped run on
/// the shmring e1000 build crosses zero payload bytes through the XDR
/// marshaler — the channel's marshaled-byte counters are identical no
/// matter the packet size, and throughput matches the kernel data path.
#[test]
fn shmring_netperf_crosses_zero_payload_bytes() {
    let run = |pkt_len: usize| {
        let k = Kernel::new();
        let drv = decaf_core::drivers::e1000::decaf::install_shmring(&k, "eth0").unwrap();
        k.netdev_open("eth0").unwrap();
        k.schedule_point();
        let before = drv.channel.stats();
        let stats =
            decaf_core::drivers::workloads::netperf_send(&k, "eth0", 1, 2_000, pkt_len).unwrap();
        k.run_for(2 * decaf_core::simkernel::costs::DOORBELL_COALESCE_NS);
        let after = drv.channel.stats();
        assert!(k.violations().is_empty(), "{:?}", k.violations());
        (
            stats,
            after.bytes_in - before.bytes_in,
            after.bytes_out - before.bytes_out,
            after.ring_posts - before.ring_posts,
            k.net_stats("eth0"),
        )
    };
    let (small_stats, small_in, small_out, small_posts, small_net) = run(64);
    let (big_stats, big_in, big_out, big_posts, big_net) = run(1500);
    assert_eq!(small_stats.ops, 2_000);
    assert_eq!(big_stats.ops, 2_000);
    assert!(small_net.tx_packets >= 1_999, "{small_net:?}");
    assert!(big_net.tx_packets >= 1_999, "{big_net:?}");
    // 23× more payload, identical marshaled bytes: the payload rides the
    // ring, only descriptors and doorbells cross by value.
    assert_eq!(
        small_in, big_in,
        "marshaled bytes must not scale with payload"
    );
    assert_eq!(small_out, big_out);
    assert_eq!(small_posts, big_posts);
}

/// The copy audit across builds: the same transmit workload copies the
/// same payload bytes whether the data path is native (kernel),
/// decaf-with-kernel-data-path, or shmring-hosted at user level. A
/// double charge anywhere in the stack breaks the equality.
#[test]
fn copy_accounting_consistent_across_e1000_builds() {
    const PKTS: u64 = 50;
    const LEN: usize = 1000;
    let run = |install: &dyn Fn(&Kernel)| {
        let k = Kernel::new();
        install(&k);
        k.netdev_open("eth0").unwrap();
        k.schedule_point();
        let before = k.stats().bytes_copied;
        for i in 0..PKTS {
            k.net_xmit(
                "eth0",
                decaf_core::simkernel::SkBuff::synthetic(LEN, i as u8, 0x0800),
            )
            .unwrap();
            k.schedule_point();
            k.run_for(300_000);
        }
        k.run_for(2 * decaf_core::simkernel::costs::DOORBELL_COALESCE_NS);
        let st = k.net_stats("eth0");
        assert_eq!(st.tx_packets, PKTS);
        assert_eq!(st.rx_packets, PKTS, "loopback delivers every frame");
        k.stats().bytes_copied - before
    };
    let native = run(&|k| {
        decaf_core::drivers::e1000::native::install(k, "eth0").unwrap();
    });
    let decaf = run(&|k| {
        decaf_core::drivers::e1000::decaf::install(k, "eth0").unwrap();
    });
    let shmring = run(&|k| {
        decaf_core::drivers::e1000::decaf::install_shmring(k, "eth0").unwrap();
    });
    // One copy into the device buffer (TX) + one into the stack (RX),
    // per packet, in every build.
    assert_eq!(native, 2 * PKTS * LEN as u64, "native copies");
    assert_eq!(decaf, native, "decaf build must copy exactly like native");
    assert_eq!(
        shmring, native,
        "shmring build must copy exactly like native"
    );
}

/// Adaptive batching (ROADMAP item): a lone deferred register write on a
/// batched transport flushes once the virtual-time deadline passes, via
/// the `flush_if_due` polling hook — low-rate control paths do not hold
/// posted writes indefinitely.
#[test]
fn adaptive_batching_flushes_lone_write_on_deadline() {
    use decaf_core::simkernel::costs::DOORBELL_COALESCE_NS;
    let k = Kernel::new();
    let spec = decaf_core::xdr::XdrSpec::parse("struct s { int x; };").unwrap();
    let ch = XpcChannel::new(
        spec,
        decaf_core::xdr::mask::MaskSet::full(),
        ChannelConfig::kernel_user_batched(),
        Domain::Nucleus,
        Domain::Decaf,
    );
    let hits = Rc::new(std::cell::Cell::new(0u32));
    let h = Rc::clone(&hits);
    ch.register_proc(
        Domain::Decaf,
        ProcDef {
            name: "writel".into(),
            arg_types: vec![],
            handler: Rc::new(move |_, _, _, _| {
                h.set(h.get() + 1);
                XdrValue::Void
            }),
        },
    )
    .unwrap();
    ch.call_deferred(&k, Domain::Nucleus, "writel", &[], &[XdrValue::UInt(1)])
        .unwrap();
    assert_eq!(hits.get(), 0, "parked below capacity");
    assert!(!ch.flush_if_due(&k).unwrap(), "deadline not reached");
    k.run_for(DOORBELL_COALESCE_NS + 1);
    assert!(ch.flush_if_due(&k).unwrap(), "deadline flush fired");
    assert_eq!(hits.get(), 1, "the posted write landed");
    assert_eq!(ch.pending_deferred(), 0);
}

/// Fault injection on the sharded facade — the `examples/fault_recovery.rs`
/// scenario extended to multi-channel sharding: one shard's decaf end is
/// killed mid-burst and must requeue its parked calls onto the fresh
/// channel without double-applying deltas. Once a hand-written scenario,
/// now a *named instance* of the general fault sweep
/// (`decaf_core::sched::fault_sweep` + `tests/fault_harness`): the same
/// replay driver that explores every (step, shard) injection point in
/// `tests/shard_sched.rs` runs the historical plan here — kill shard 1
/// right after its second op — plus the double-fault variant (shard 1
/// dies again during the same burst) the hand-written case never tried.
/// The harness asserts exactly-once execution, the closed token ledger
/// and post-reset full-marshal convergence at every step.
#[test]
fn sharded_fault_recovery_requeues_without_double_applying_deltas() {
    use decaf_core::sched::{FaultPlan, FaultPoint};
    let schedule = [0usize, 1, 2, 0, 1, 2];
    fault_harness::run_nic_fault_schedule(3, &schedule, &FaultPlan::single(4, 1));
    fault_harness::run_nic_fault_schedule(
        3,
        &schedule,
        &FaultPlan::double(
            FaultPoint { step: 1, shard: 1 },
            FaultPoint { step: 4, shard: 1 },
        ),
    );
}

/// Fault injection on the *storage* sharded path — the uhci mirror of
/// the NIC case above: one shard's decaf end dies with URB requests
/// still parked (below the doorbell watermark) in its pinned submit
/// ring; recovery resets the dead end, requeues surviving control calls
/// and re-rings the doorbell, so every URB completes exactly once with
/// flash byte-identical to a fault-free hosting. Also now a named
/// instance of the general sweep (`tests/storage_sched.rs` explores
/// every injection point): the historical mid-burst plan plus a
/// double-fault variant, replayed on the driver-level harness against
/// the native-hosting golden flash image.
#[test]
fn sharded_storage_fault_recovery_redrains_pinned_urbs() {
    use decaf_core::sched::{FaultPlan, FaultPoint};
    let golden = fault_harness::storage_golden_flash(3, 2);
    let schedule = [0usize, 1, 2, 0, 1, 2];
    fault_harness::run_storage_fault_schedule(3, &schedule, &FaultPlan::single(3, 1), &golden);
    fault_harness::run_storage_fault_schedule(
        3,
        &schedule,
        &FaultPlan::double(
            FaultPoint { step: 2, shard: 2 },
            FaultPoint { step: 4, shard: 2 },
        ),
        &golden,
    );
}

/// The shmring rtl8139 build: the second NIC exposes the same user-level
/// data path, and its four-slot transmit pool applies backpressure
/// rather than overwriting in-flight buffers.
#[test]
fn shmring_rtl8139_runs_netperf_shape() {
    let k = Kernel::new();
    let drv = decaf_core::drivers::rtl8139::install_shmring(&k, "eth1").unwrap();
    k.netdev_open("eth1").unwrap();
    let before = drv.channel.stats();
    let stats = decaf_core::drivers::workloads::netperf_send(&k, "eth1", 1, 1_000, 1200).unwrap();
    k.run_for(3 * decaf_core::simkernel::costs::DOORBELL_COALESCE_NS);
    assert_eq!(stats.ops, 1_000);
    let st = k.net_stats("eth1");
    assert!(st.tx_packets >= 999, "{st:?}");
    let after = drv.channel.stats();
    assert!(after.doorbells > before.doorbells);
    assert!(
        (after.bytes_in + after.bytes_out) - (before.bytes_in + before.bytes_out)
            < st.tx_packets * 64,
        "payload must not reach the marshaler"
    );
    assert!(k.violations().is_empty(), "{:?}", k.violations());
}
