//! Shared fault-exploration replay drivers for the sched harnesses.
//!
//! `decaf_core::sched::fault_sweep` enumerates (schedule × fault plan)
//! pairs; the two replay functions here are what it replays them
//! through — one for the NIC-side sharded channel, one for the sharded
//! storage driver. Both build a fresh system per replay, run the
//! schedule injecting `recover_shard` at the plan's `(step, shard)`
//! points, and assert the full differential oracle *at every step*,
//! not just at settle:
//!
//! * **NIC** — exactly-once token resolution (`tokens_issued ==
//!   tokens_harvested + tokens_cancelled + outstanding` after every
//!   step, the harvested set equal to the issued set at settle),
//!   exactly-once execution (handler hits == calls issued), zero
//!   cancellations on decaf-end faults, and home-heap convergence after
//!   a per-shard probe round (a shard recovered after its last op would
//!   otherwise have nothing to converge).
//! * **storage** — URB and pool conservation plus the zero-copy audit
//!   after every step, and at settle: every URB completed exactly once,
//!   per-shard conservation, an empty pool, and flash contents
//!   *byte-identical to a native-hosting golden run* of the same cells.
//!
//! `expect_oracle_failure` is the sensitivity side: it replays with one
//! of the `mutation` hooks armed (a planted recovery bug) and asserts
//! the oracle panics — an oracle that cannot catch a planted bug proves
//! nothing.

#![allow(dead_code)] // each test binary uses the subset it needs

use std::cell::Cell;
use std::collections::HashSet;
use std::rc::Rc;

use decaf_core::sched::FaultPlan;
use decaf_core::shmring::flow_hash;
use decaf_core::simdev::uhci as hwreg;
use decaf_core::simkernel::usb::{Urb, UrbDir};
use decaf_core::simkernel::{costs, Kernel};
use decaf_core::xdr::mask::MaskSet;
use decaf_core::xdr::{XdrSpec, XdrValue};
use decaf_core::xpc::{ChannelConfig, Domain, ProcDef, ShardPolicy, ShardedChannel};

/// Double-fault plans per schedule in the standard sweeps: enough to
/// cross same-shard repeats with cross-shard pairs without doubling the
/// sweep's cost.
pub const DOUBLE_CAP: usize = 4;

// ------------------------------------------------------- NIC-side replay

fn spec() -> XdrSpec {
    XdrSpec::parse("struct st { int id; int value; };").unwrap()
}

/// Replays one schedule on an async sharded channel, injecting a
/// decaf-end `recover_shard` at every point the plan names, with the
/// token/requeue ledger checked after every step and the full
/// exactly-once + convergence oracle at settle.
pub fn run_nic_fault_schedule(shards: usize, schedule: &[usize], plan: &FaultPlan) {
    let kernel = Kernel::new();
    let sc = ShardedChannel::new(
        spec(),
        MaskSet::full(),
        ChannelConfig::kernel_user_async(),
        Domain::Nucleus,
        Domain::Decaf,
        shards,
        ShardPolicy::FlowHash,
    );
    // Exactly-once execution ledger: the handler counts applications.
    let hits = Rc::new(Cell::new(0u64));
    let h = Rc::clone(&hits);
    sc.register_proc(
        Domain::Decaf,
        ProcDef {
            name: "touch".into(),
            arg_types: vec!["st".into()],
            handler: Rc::new(move |_, _, _, _| {
                h.set(h.get() + 1);
                XdrValue::Void
            }),
        },
    )
    .unwrap();
    let objects: Vec<_> = (0..shards)
        .map(|i| {
            let addr = sc.alloc_shared_at(i, Domain::Nucleus, "st").unwrap();
            sc.heap(i, Domain::Nucleus)
                .borrow_mut()
                .set_scalar(addr, "id", XdrValue::Int(i as i32))
                .unwrap();
            addr
        })
        .collect();

    let ctx = |t: usize| format!("schedule {schedule:?} plan {:?} step {t}", plan.injections);
    let mut issued: HashSet<(usize, u64)> = HashSet::new();
    let mut resolved: HashSet<(usize, u64)> = HashSet::new();
    let collect = |resolved: &mut HashSet<(usize, u64)>, t: usize| {
        for i in 0..shards {
            for tok in sc.shard(i).harvest(&kernel) {
                assert!(
                    resolved.insert((i, tok.0)),
                    "{}: token {} harvested twice on shard {i}",
                    ctx(t),
                    tok.0
                );
            }
        }
    };
    let issue = |issued: &mut HashSet<(usize, u64)>, shard: usize, value: i32, t: usize| {
        sc.heap(shard, Domain::Nucleus)
            .borrow_mut()
            .set_scalar(objects[shard], "value", XdrValue::Int(value))
            .unwrap();
        let token = sc
            .call_async(
                &kernel,
                Domain::Nucleus,
                "touch",
                &[Some(objects[shard])],
                &[],
            )
            .unwrap();
        assert!(
            issued.insert((shard, token.0)),
            "{}: token {} issued twice on shard {shard}",
            ctx(t),
            token.0
        );
    };

    for (t, &shard) in schedule.iter().enumerate() {
        issue(&mut issued, shard, t as i32 + 1, t);
        // Deterministic, schedule-dependent virtual-time progression.
        kernel.run_for(1 + (shard as u64 + 1) * 500 + (t as u64 % 3) * 137);
        sc.flush_if_due(&kernel).unwrap();
        for victim in plan.shards_at(t) {
            // Harvest first so recovery's internal harvest resolves
            // nothing invisibly; then the victim's decaf end dies.
            collect(&mut resolved, t);
            sc.recover_shard(&kernel, victim, Domain::Decaf).unwrap();
        }
        // Per-step oracle: the ledger closes at every step, a decaf-end
        // fault cancels nothing (all calls are nucleus-originated), and
        // no fault leaks into the error counters.
        let s = sc.stats();
        assert_eq!(s.tokens_issued, issued.len() as u64, "{}", ctx(t));
        assert_eq!(s.tokens_cancelled, 0, "{}", ctx(t));
        assert_eq!(
            s.tokens_issued,
            s.tokens_harvested + s.tokens_cancelled + sc.tokens_outstanding() as u64,
            "{}: per-step token ledger does not close",
            ctx(t)
        );
        assert_eq!(s.faults, 0, "{}", ctx(t));
    }

    // Probe round: one more call per shard, so every shard's object
    // re-marshals (in full, post-reset) and convergence is checkable
    // even on shards recovered after their last scheduled op.
    let probe = schedule.len();
    for shard in 0..shards {
        issue(&mut issued, shard, 10_000 + shard as i32, probe);
    }
    sc.flush_all(&kernel).unwrap();
    collect(&mut resolved, probe);

    // Settle oracle: exactly-once resolution and execution, ledger
    // closed, every home heap converged to the nucleus state.
    assert_eq!(resolved, issued, "{}", ctx(probe));
    let s = sc.stats();
    assert_eq!(s.tokens_issued, issued.len() as u64, "{}", ctx(probe));
    assert_eq!(
        s.tokens_issued,
        s.tokens_harvested + s.tokens_cancelled,
        "{}: settle token ledger does not close",
        ctx(probe)
    );
    assert_eq!(s.tokens_cancelled, 0, "{}", ctx(probe));
    assert_eq!(sc.tokens_outstanding(), 0, "{}", ctx(probe));
    assert_eq!(
        hits.get(),
        issued.len() as u64,
        "{}: calls lost or double-applied",
        ctx(probe)
    );
    for shard in 0..shards {
        let heap = sc.heap(shard, Domain::Decaf);
        let h = heap.borrow();
        assert_eq!(h.len(), 1, "{}: shard {shard} object count", ctx(probe));
        let addr = h.iter().map(|(a, _)| a).next().unwrap();
        assert_eq!(
            h.scalar(addr, "id").unwrap(),
            &XdrValue::Int(shard as i32),
            "{}: foreign object on shard {shard}",
            ctx(probe)
        );
        assert_eq!(
            h.scalar(addr, "value").unwrap(),
            &XdrValue::Int(10_000 + shard as i32),
            "{}: shard {shard} did not converge",
            ctx(probe)
        );
    }
    assert_eq!(s.faults, 0, "{}", ctx(probe));
    assert_eq!(sc.pending_deferred(), 0, "{}", ctx(probe));
}

// ------------------------------------------------------- storage replay

/// For each shard, the lowest LUN that steers to it — how a schedule's
/// per-shard streams are driven through the LUN-steered storage path.
/// Every width in 2..=4 is fully covered within the device's
/// `MAX_LUNS = 7` units.
pub fn lun_for_shard(shards: usize) -> Vec<usize> {
    (0..shards)
        .map(|s| {
            (0..hwreg::MAX_LUNS)
                .find(|&lun| (flow_hash(lun as u64) % shards as u64) as usize == s)
                .unwrap_or_else(|| panic!("no LUN steers to shard {s} of {shards}"))
        })
        .collect()
}

/// Deterministic write payload of op `n` on stream `stream`: full
/// sectors interleaved with short ones, so actual-length handling is
/// exercised under faults too.
pub fn write_payload(stream: usize, sector: u32) -> Vec<u8> {
    let len = match (stream + sector as usize) % 3 {
        0 => hwreg::SECTOR_SIZE,
        1 => 37,
        _ => 200,
    };
    (0..len)
        .map(|i| (stream as u8) ^ (sector as u8).wrapping_mul(41) ^ (i as u8).wrapping_mul(7))
        .collect()
}

fn write_urb(lun: usize, sector: u32) -> Urb {
    let mut data = vec![hwreg::FLASH_CMD_WRITE];
    data.extend_from_slice(&sector.to_le_bytes());
    data.extend_from_slice(&write_payload(lun, sector));
    Urb {
        endpoint: hwreg::ep_bulk_out(lun) as u8,
        dir: UrbDir::Out,
        data,
    }
}

/// Flash image as `flash_contents()` reports it: `(lun, sector, bytes)`
/// per written cell.
pub type FlashImage = Vec<(usize, u32, Vec<u8>)>;

/// The golden flash image for a `(shards, ops)` configuration: the same
/// cell set every schedule of that configuration writes, run through
/// the *native* hosting. Flash contents are schedule-independent (each
/// cell is written exactly once per replay), so one golden run anchors
/// the byte-identical-across-hostings oracle for every faulted replay.
pub fn storage_golden_flash(shards: usize, ops: usize) -> FlashImage {
    let k = Kernel::new();
    let drv = decaf_core::drivers::uhci::install_native(&k, "uhci0").unwrap();
    for &lun in &lun_for_shard(shards) {
        for sector in 0..ops as u32 {
            k.usb_submit_urb(
                "uhci0",
                write_urb(lun, sector),
                Rc::new(|_, r| {
                    r.unwrap();
                }),
            )
            .unwrap();
            k.schedule_point();
        }
    }
    k.run_for(4 * costs::DOORBELL_COALESCE_NS);
    let contents = drv.dev.borrow().flash_contents();
    contents
}

/// Replays one schedule on the sharded uhci driver, injecting
/// `recover_shard` at every point the plan names. Step `t` submits the
/// next write URB of stream `schedule[t]` (each stream drives one LUN
/// steered to one shard); conservation, the pool and the zero-copy
/// audit are checked after every step, and at settle every URB must
/// have completed exactly once with flash byte-identical to the
/// native-hosting `golden` image.
pub fn run_storage_fault_schedule(
    shards: usize,
    schedule: &[usize],
    plan: &FaultPlan,
    golden: &FlashImage,
) {
    let luns = lun_for_shard(shards);
    let k = Kernel::new();
    let drv = decaf_core::drivers::uhci::install_sharded(&k, "uhci0", shards).unwrap();
    let done = Rc::new(Cell::new(0u32));
    let ctx = |t: usize| format!("schedule {schedule:?} plan {:?} step {t}", plan.injections);

    let mut op_index = vec![0u32; shards];
    for (t, &stream) in schedule.iter().enumerate() {
        let sector = op_index[stream];
        op_index[stream] += 1;
        let d = Rc::clone(&done);
        k.usb_submit_urb(
            "uhci0",
            write_urb(luns[stream], sector),
            Rc::new(move |_, r| {
                r.unwrap();
                d.set(d.get() + 1);
            }),
        )
        .unwrap();
        k.schedule_point();
        // Deterministic, schedule-dependent virtual-time progression.
        k.run_for(1 + (stream as u64 + 1) * 500 + (t as u64 % 3) * 137);
        for victim in plan.shards_at(t) {
            drv.recover_shard(victim).unwrap();
            assert_eq!(
                drv.channels.heap(victim, Domain::Decaf).borrow().len(),
                0,
                "{}: failed end not reset",
                ctx(t)
            );
        }
        // Per-step oracle: conservation and the zero-copy audit hold at
        // every fault point, not just at settle.
        assert!(drv.urb_path.conserved(), "{}", ctx(t));
        assert!(drv.urb_path.set().pool().conserved(), "{}", ctx(t));
        assert_eq!(k.stats().bytes_copied, 0, "{}", ctx(t));
        assert!(
            k.violations().is_empty(),
            "{}: {:?}",
            ctx(t),
            k.violations()
        );
    }

    // Settle: the poll timer dispatches whatever recovery doorbells or
    // ordinary deadlines drained.
    k.run_for(4 * costs::DOORBELL_COALESCE_NS);
    let settle = schedule.len();
    assert_eq!(
        done.get(),
        schedule.len() as u32,
        "{}: every URB completes exactly once",
        ctx(settle)
    );
    for shard in 0..shards {
        assert!(
            drv.urb_path.set().shard_conserved(shard),
            "{}: shard {shard} not conserved",
            ctx(settle)
        );
    }
    assert!(drv.urb_path.conserved(), "{}", ctx(settle));
    assert_eq!(
        drv.urb_path.set().pool().in_use_sectors(),
        0,
        "{}",
        ctx(settle)
    );
    assert_eq!(
        k.stats().bytes_copied,
        0,
        "{}: recovery never copies",
        ctx(settle)
    );
    assert!(
        k.violations().is_empty(),
        "{}: {:?}",
        ctx(settle),
        k.violations()
    );
    assert_eq!(
        &drv.dev.borrow().flash_contents(),
        golden,
        "{}: flash diverges from the native-hosting golden run",
        ctx(settle)
    );
}

// --------------------------------------------------- sensitivity driver

/// Runs `replay` expecting its oracle to panic — the sensitivity check
/// for a planted mutation. The default panic hook is silenced for the
/// duration so the *expected* failure does not spray a backtrace into
/// the test log, then restored.
pub fn expect_oracle_failure(what: &str, replay: impl FnOnce() + std::panic::UnwindSafe) {
    let quiet = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = std::panic::catch_unwind(replay);
    std::panic::set_hook(quiet);
    assert!(
        result.is_err(),
        "oracle failed to reject the planted mutation: {what}"
    );
}
