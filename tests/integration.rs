//! Cross-crate integration tests: the full pipeline from mini-C source
//! through DriverSlicer to a running split driver over XPC.

use std::rc::Rc;

use decaf_core::drivers::{workloads, DriverKind};
use decaf_core::simkernel::{Kernel, SkBuff, ViolationKind};
use decaf_core::slicer::{slice, SliceConfig};
use decaf_core::xpc::Domain;

/// Every driver's mini-C source parses, slices, and produces a valid XDR
/// spec whose IDL round-trips through the XDR parser.
#[test]
fn all_driver_sources_slice_and_generate_valid_xdr() {
    for kind in DriverKind::all() {
        let plan = slice(kind.minic_source(), &SliceConfig::default())
            .unwrap_or_else(|e| panic!("{} failed to slice: {e}", kind.name()));
        assert!(
            !plan.kernel_fns.is_empty(),
            "{} has kernel functions",
            kind.name()
        );
        assert!(
            !plan.decaf_fns.is_empty(),
            "{} has decaf functions",
            kind.name()
        );
        assert!(
            !plan.user_entry_points.is_empty(),
            "{} has upcall entry points",
            kind.name()
        );
        let idl = plan.spec.to_idl();
        decaf_core::xdr::XdrSpec::parse(&idl)
            .unwrap_or_else(|e| panic!("{} generated invalid XDR: {e}\n{idl}", kind.name()));
    }
}

/// The slicer's split source trees re-parse, and the partition of the
/// re-parsed user tree matches the plan (the user tree contains exactly
/// the user functions).
#[test]
fn split_source_trees_reparse_consistently() {
    for kind in DriverKind::all() {
        let program = decaf_core::slicer::parse::parse(kind.minic_source()).unwrap();
        let plan = slice(kind.minic_source(), &SliceConfig::default()).unwrap();
        let out = decaf_core::slicer::emit::split_source(&program, &plan, kind.name());
        let user = decaf_core::slicer::parse::parse(&out.user)
            .unwrap_or_else(|e| panic!("{} user tree: {e}", kind.name()));
        for f in &plan.user_fns {
            assert!(
                user.find_function(f).is_some(),
                "{}: `{f}` missing from user tree",
                kind.name()
            );
        }
        for f in &plan.kernel_fns {
            assert!(
                user.find_function(f).is_none(),
                "{}: kernel `{f}` leaked into user tree",
                kind.name()
            );
        }
    }
}

/// All five decaf builds install, initialize through XPC, run their
/// workload, and never violate a kernel rule.
#[test]
fn all_five_decaf_builds_run_their_workloads_cleanly() {
    // 8139too.
    {
        let k = Kernel::new();
        let drv = decaf_core::drivers::rtl8139::install_decaf(&k, "eth0").unwrap();
        k.netdev_open("eth0").unwrap();
        let s = workloads::netperf_send(&k, "eth0", 1, 500, 1500).unwrap();
        assert_eq!(s.ops, 500);
        assert!(k.violations().is_empty(), "8139too: {:?}", k.violations());
        assert!(drv.crossings() > 0);
    }
    // E1000.
    {
        let k = Kernel::new();
        let drv = decaf_core::drivers::e1000::decaf::install(&k, "eth0").unwrap();
        k.netdev_open("eth0").unwrap();
        k.schedule_point();
        let s = workloads::netperf_send(&k, "eth0", 1, 1000, 1500).unwrap();
        assert_eq!(s.ops, 1000);
        assert!(k.violations().is_empty(), "e1000: {:?}", k.violations());
        assert!(drv.crossings() > 10);
    }
    // ens1371.
    {
        let k = Kernel::new();
        let drv = decaf_core::drivers::ens1371::install_decaf(&k, "card0").unwrap();
        let s = workloads::mpg123(&k, "card0", 1).unwrap();
        assert_eq!(s.ops, 44_100);
        assert!(k.violations().is_empty(), "ens1371: {:?}", k.violations());
        assert!(drv.crossings() > 0);
    }
    // uhci-hcd.
    {
        let k = Kernel::new();
        let drv = decaf_core::drivers::uhci::install_decaf(&k, "uhci0").unwrap();
        let s = workloads::tar_to_flash(&k, "uhci0", 2, 8).unwrap();
        assert_eq!(s.ops, 16);
        assert_eq!(drv.dev.borrow().flash_sector_count(), 16);
        assert!(k.violations().is_empty(), "uhci: {:?}", k.violations());
    }
    // psmouse.
    {
        let k = Kernel::new();
        let drv = decaf_core::drivers::psmouse::install_decaf(&k, "mouse0").unwrap();
        let dev = Rc::clone(&drv.dev);
        let s = workloads::move_and_click(&k, "mouse0", 1, 50, &move |k, dx, dy, b| {
            dev.borrow_mut().inject_move(k, dx, dy, b);
        })
        .unwrap();
        assert!(s.ops >= 100);
        assert!(k.violations().is_empty(), "psmouse: {:?}", k.violations());
    }
}

/// The object tracker keeps one user-level copy per shared object across
/// many upcalls, and masks keep kernel-private state at home.
#[test]
fn shared_adapter_is_tracked_not_duplicated() {
    let k = Kernel::new();
    let drv = decaf_core::drivers::e1000::decaf::install(&k, "eth0").unwrap();
    let decaf_objects_after_init = drv.channel.heap(Domain::Decaf).borrow().len();
    // Force many watchdog upcalls (each carries the adapter).
    k.netdev_open("eth0").unwrap();
    k.run_for(20_000_000_000);
    assert_eq!(
        drv.channel.heap(Domain::Decaf).borrow().len(),
        decaf_objects_after_init,
        "repeat transfers must update, not duplicate"
    );
    let ts = drv.channel.tracker_stats(Domain::Decaf);
    assert!(ts.hits > 5, "tracker hits accumulate: {ts:?}");
}

/// An upcall attempted from interrupt context is flagged by the kernel —
/// the rule the whole §3.1.3 machinery (IRQ disabling, timer deferral,
/// mutex sound core) exists to uphold.
#[test]
fn upcall_from_interrupt_context_is_flagged() {
    let k = Kernel::new();
    let drv = decaf_core::drivers::e1000::decaf::install(&k, "eth0").unwrap();
    let nuc = Rc::clone(&drv.nuc);
    let adapter = drv.adapter;
    let t = k.timer_create(
        "bad_timer",
        Rc::new(move |k| {
            // A timer (softirq) calling the decaf driver directly: illegal.
            let _ = nuc.upcall("e1000_watchdog_task", &[Some(adapter)], &[]);
            let _ = k; // context checked inside the channel
        }),
    );
    k.timer_arm(t, 1_000);
    k.run_for(10_000);
    assert!(
        k.violations()
            .iter()
            .any(|v| v.kind == ViolationKind::UpcallInAtomic),
        "violations: {:?}",
        k.violations()
    );
}

/// Native and decaf builds deliver identical packet streams (functional
/// equivalence of the split).
#[test]
fn native_and_decaf_e1000_are_functionally_equivalent() {
    let run = |decaf: bool| -> (u64, u64) {
        let k = Kernel::new();
        if decaf {
            let _d = decaf_core::drivers::e1000::decaf::install(&k, "eth0").unwrap();
        } else {
            let _n = decaf_core::drivers::e1000::native::install(&k, "eth0").unwrap();
        }
        k.netdev_open("eth0").unwrap();
        k.schedule_point();
        for i in 0..50u32 {
            k.net_xmit(
                "eth0",
                SkBuff::synthetic(64 + i as usize * 7, i as u8, 0x0800),
            )
            .unwrap();
            k.schedule_point();
        }
        let st = k.net_stats("eth0");
        (st.rx_packets, st.rx_bytes)
    };
    assert_eq!(run(false), run(true));
}

/// The audit pass finds the planted ignored-return bugs in the E1000
/// source and no false positives in fully-checked functions.
#[test]
fn audit_findings_are_stable() {
    let f = decaf_core::figures::figure5();
    assert!(f.ignored_returns >= 2);
    assert!(f.propagation_lines >= 8);
    // config_dsp-style functions are clean.
    let program = decaf_core::slicer::parse::parse(DriverKind::E1000.minic_source()).unwrap();
    let report = decaf_core::slicer::audit::audit(&program);
    assert!(
        !report
            .ignored_returns
            .iter()
            .any(|f| f.function == "e1000_config_dsp_after_link_change"
                && f.callee == "phy_read"
                && f.line < 5),
        "no false positives on the checked preamble"
    );
}
