//! Load-engine properties and the overload-recovery integration test.
//!
//! * **Determinism** — the loadgen rule: a generator called twice with
//!   the same seed and parameters returns byte-identical schedules, and
//!   any seed change perturbs the stream. Holds across all three
//!   arrival shapes and the class merge.
//! * **Rate tolerance** — the empirical arrival rate of a generated
//!   schedule tracks the nominal rate (exactly for the paced shape,
//!   within ±10 % for the stochastic ones at experiment scales).
//! * **Recovery under storm** — a decaf-side storage shard failure
//!   injected at peak load (1.5× saturation) must not leak anything:
//!   the run drains, the admission ledger closes, URB descriptors and
//!   sectors conserve, and every async doorbell token settles. All of
//!   that is asserted *inside* `overload_run`; the test drives the
//!   fault hook and checks the row still has a sane shape.
//!
//! Runs under the offline proptest shim (64 deterministic cases); the
//! registry `proptest` crate is a drop-in replacement with shrinking.

use decaf_core::experiments::{overload_run, overload_saturation_rate};
use decaf_core::loadgen::{
    burst_schedule, empirical_rate_per_s, merge_schedules, poisson_schedule, uniform_schedule,
};
use decaf_core::xpc::AdmissionPolicy;
use proptest::prelude::*;

proptest! {
    #[test]
    fn same_seed_schedules_are_byte_identical(
        seed in any::<u64>(),
        rate in 1_000u64..200_000,
        horizon_ms in 1u64..20,
    ) {
        let horizon = horizon_ms * 1_000_000;
        let p1 = poisson_schedule(seed, rate, horizon);
        let p2 = poisson_schedule(seed, rate, horizon);
        prop_assert_eq!(&p1, &p2, "poisson determinism");
        let b1 = burst_schedule(seed, rate, horizon, 8);
        let b2 = burst_schedule(seed, rate, horizon, 8);
        prop_assert_eq!(&b1, &b2, "burst determinism");
        let m1 = merge_schedules(&[('n', p1.clone()), ('s', b1.clone())]);
        let m2 = merge_schedules(&[('n', p2), ('s', b2)]);
        prop_assert_eq!(m1, m2, "merge determinism");
        // A different seed perturbs the stream (whenever it is long
        // enough that a collision would be astronomically unlikely).
        let q = poisson_schedule(seed ^ 1, rate, horizon);
        if p1.len() > 4 {
            prop_assert!(p1 != q, "seed change must perturb the schedule");
        }
    }

    #[test]
    fn empirical_rates_track_nominal(
        seed in any::<u64>(),
        rate in 40_000u64..200_000,
    ) {
        // 50 ms × ≥40k/s ⇒ ≥2000 expected arrivals: a ±10 % band is
        // >6σ for a Poisson count of that size.
        let horizon = 50_000_000;
        // The paced shape is exact up to the one-arrival granularity of
        // the horizon (count truncates: 1e9/horizon per arrival).
        let granularity = 1_000_000_000 / horizon + 1;
        let exact = empirical_rate_per_s(&uniform_schedule(rate, horizon), horizon);
        prop_assert!(
            exact.abs_diff(rate) <= granularity,
            "uniform strays past truncation granularity: {exact} vs {rate}"
        );
        // The burst shape's arrival count varies with the *epoch* count
        // (relative σ = 1/√epochs, 8× fewer than arrivals), so its band
        // is wider: ≥250 epochs ⇒ 25 % is ~4σ.
        for (name, tolerance, sched) in [
            ("poisson", rate / 10, poisson_schedule(seed, rate, horizon)),
            ("burst", rate / 4, burst_schedule(seed, rate, horizon, 8)),
        ] {
            let got = empirical_rate_per_s(&sched, horizon);
            prop_assert!(
                got.abs_diff(rate) <= tolerance,
                "{name} rate {got}/s strays from nominal {rate}/s"
            );
            prop_assert!(
                sched.windows(2).all(|w| w[0] <= w[1]),
                "{name} schedule must ascend"
            );
        }
    }
}

#[test]
fn shard_recovery_at_peak_load_keeps_the_ledger_closed() {
    let sat = overload_saturation_rate();
    for policy in [AdmissionPolicy::QueueUnbounded, AdmissionPolicy::ShedOldest] {
        // Fault at mid-horizon: the storm is at full depth when the
        // decaf end of storage shard 0 fails and recovers. overload_run
        // itself asserts the whole conservation ledger (zero bytes
        // copied, URB conservation, admission balance, token ledger,
        // no violations) — reaching the row at all means those held.
        let faulted = overload_run(policy, sat * 3 / 2, sat, Some(2_000_000));
        assert_eq!(
            faulted.offered,
            faulted.admitted + faulted.rejected,
            "{policy}: offered splits into admitted + rejected"
        );
        assert!(
            faulted.completed > 0,
            "{policy}: the storm still completes work through recovery"
        );
        // Requeued submissions may retry-fail, but the engine accounts
        // every admitted request: completed + shed + dropped covers it
        // (the identity is asserted inside overload_run; here we pin
        // that recovery didn't *inflate* completions past admissions).
        assert!(
            faulted.completed <= faulted.admitted,
            "{policy}: completions cannot exceed admissions"
        );
    }
}
