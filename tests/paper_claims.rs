//! Tests that assert the paper's five headline claims hold in this
//! reproduction (abstract: move the majority of code out of the kernel,
//! reduce driver code, catch broken error handling at compile time/
//! statically, evolve gracefully, perform within ~1% of native).

use decaf_core::drivers::{workloads, DriverKind};
use decaf_core::experiments;
use decaf_core::simkernel::Kernel;

/// Claim 1: "move the majority of a driver's code out of the kernel" —
/// in four of five drivers (uhci-hcd is the paper's own counterexample).
#[test]
fn claim1_majority_of_code_moves_out() {
    let rows = experiments::table2();
    let mut moved_majority = 0;
    for row in &rows {
        let user_loc = row.library_loc + row.decaf_loc;
        if user_loc > row.nucleus_loc {
            moved_majority += 1;
        }
    }
    assert!(
        moved_majority >= 4,
        "only {moved_majority} drivers moved a majority"
    );
}

/// Claim 2: annotations are a small burden (<2% of source in the paper;
/// we allow a slightly looser bound on the condensed sources).
#[test]
fn claim2_annotation_burden_is_small() {
    for kind in DriverKind::all() {
        let plan = decaf_core::slicer::slice(
            kind.minic_source(),
            &decaf_core::slicer::SliceConfig::default(),
        )
        .unwrap();
        let fraction = plan.annotations as f64 / plan.loc.total as f64;
        assert!(
            fraction < 0.25,
            "{}: {:.1}% annotation burden",
            kind.name(),
            fraction * 100.0
        );
    }
}

/// Claim 3: the error-handling audit detects ignored error codes
/// statically (the paper's exceptions found 28; our planted bug class is
/// found, with zero findings in the fully-checked function).
#[test]
fn claim3_broken_error_handling_detected() {
    let f = decaf_core::figures::figure5();
    assert!(f.ignored_returns >= 2, "{f:?}");
    assert!(
        f.propagation_lines >= 8,
        "removable boilerplate found: {f:?}"
    );
    assert!(f.removable_fraction > 0.01, "{f:?}");
}

/// Claim 4: evolution lands overwhelmingly at user level; interface
/// changes are rare and re-slicing handles them.
#[test]
fn claim4_evolution_lands_at_user_level() {
    let study = experiments::table4();
    assert_eq!(study.total.patches_applied, 320);
    let user_lines = study.total.decaf_lines + study.total.library_lines;
    assert!(
        user_lines as f64 > 5.0 * study.total.nucleus_lines as f64,
        "user {user_lines} vs nucleus {}",
        study.total.nucleus_lines
    );
    assert_eq!(study.total.interface_changes, 23);
}

/// Claim 5: steady-state performance within ~1% of native, while decaf
/// initialization is substantially slower (the paper's trade-off).
#[test]
fn claim5_steady_state_parity_and_slow_init() {
    // One representative driver per class keeps this test quick; the full
    // sweep lives in the tables bench.
    let kn = Kernel::new();
    let native = decaf_core::drivers::e1000::native::install(&kn, "eth0").unwrap();
    kn.netdev_open("eth0").unwrap();
    kn.schedule_point();
    let n = workloads::netperf_send(&kn, "eth0", 2, 2_000, 1500).unwrap();

    let kd = Kernel::new();
    let decaf = decaf_core::drivers::e1000::decaf::install(&kd, "eth0").unwrap();
    kd.netdev_open("eth0").unwrap();
    kd.schedule_point();
    let d = workloads::netperf_send(&kd, "eth0", 2, 2_000, 1500).unwrap();

    let relative = d.throughput_mbps() / n.throughput_mbps();
    assert!(
        (0.99..=1.01).contains(&relative),
        "steady-state perf must be within 1%: {relative}"
    );
    assert!(
        decaf.init_latency_ns > 3 * native.init_latency_ns,
        "decaf init ({}) should be several times native ({})",
        decaf.init_latency_ns,
        native.init_latency_ns
    );
    assert!(
        decaf.crossings() > 20,
        "init is crossing-heavy: {}",
        decaf.crossings()
    );
}
