//! Deterministic schedule exploration for the sharded XPC layer.
//!
//! A sharded channel's invariants must hold under *every* ordering of
//! per-shard work, not just the one a happy-path test happens to
//! produce. This harness enumerates interleavings of 2–4 shards'
//! op streams exhaustively (lexicographic multiset permutations — no
//! randomness, every run identical) and replays each schedule against a
//! fresh kernel at deterministic virtual-time offsets, asserting:
//!
//! * **home-channel pinning** — after any schedule, every shared object
//!   has crossed on exactly one shard (its home): no object is dirtied
//!   or delta-encoded on two shards in one generation, and shards that
//!   home no touched object marshaled no objects at all;
//! * **descriptor conservation under completion steering** — every
//!   descriptor posted into a [`RingSet`] is eventually completed back
//!   to the shard that posted it, none lost, none duplicated, regardless
//!   of how producer and consumer steps interleave;
//! * **completion-token lifecycle** — on the async transport, every
//!   token a schedule launches is harvested exactly once (never lost,
//!   never double-resolved) and the ledger `tokens_issued ==
//!   tokens_harvested + tokens_cancelled` closes, including across a
//!   mid-schedule `recover_shard`.

use std::collections::{HashMap, HashSet};
use std::rc::Rc;

use decaf_core::sched::{
    self, fault_sweep, interleavings, interleavings_spread, schedule_sweep, FaultPlan, SweepConfig,
};

#[path = "fault_harness/mod.rs"]
mod fault_harness;
use decaf_core::shmring::{BufHandle, Descriptor, RingSet};
use decaf_core::simkernel::{CpuClass, Kernel};
use decaf_core::xdr::mask::MaskSet;
use decaf_core::xdr::{XdrSpec, XdrValue};
use decaf_core::xpc::{ChannelConfig, Domain, ProcDef, ShardPolicy, ShardedChannel};

fn spec() -> XdrSpec {
    XdrSpec::parse("struct st { int id; int value; };").unwrap()
}

/// Replays one schedule against a sharded channel: step t runs the next
/// op of shard `schedule[t]` (dirty the shard's homed object, then call
/// through the facade), with virtual time advancing by a
/// schedule-dependent amount between steps so the adaptive-batching
/// deadlines interleave differently per schedule.
fn run_home_pinning(shards: usize, schedule: &[usize]) {
    let kernel = Kernel::new();
    let sc = ShardedChannel::new(
        spec(),
        MaskSet::full(),
        ChannelConfig::kernel_user_batched(),
        Domain::Nucleus,
        Domain::Decaf,
        shards,
        ShardPolicy::FlowHash,
    );
    sc.register_proc(
        Domain::Decaf,
        ProcDef {
            name: "touch".into(),
            arg_types: vec!["st".into()],
            handler: Rc::new(|_, _, _, _| XdrValue::Void),
        },
    )
    .unwrap();
    let objects: Vec<_> = (0..shards)
        .map(|i| {
            let addr = sc.alloc_shared_at(i, Domain::Nucleus, "st").unwrap();
            sc.heap(i, Domain::Nucleus)
                .borrow_mut()
                .set_scalar(addr, "id", XdrValue::Int(i as i32))
                .unwrap();
            addr
        })
        .collect();

    let mut op_index = vec![0usize; shards];
    let mut last_value = vec![0i32; shards];
    for (t, &shard) in schedule.iter().enumerate() {
        let n = op_index[shard];
        op_index[shard] += 1;
        let value = (t as i32 + 1) * 100 + shard as i32;
        sc.heap(shard, Domain::Nucleus)
            .borrow_mut()
            .set_scalar(objects[shard], "value", XdrValue::Int(value))
            .unwrap();
        if n.is_multiple_of(2) {
            sc.call_deferred(
                &kernel,
                Domain::Nucleus,
                "touch",
                &[Some(objects[shard])],
                &[],
            )
            .unwrap();
        } else {
            sc.call(
                &kernel,
                Domain::Nucleus,
                "touch",
                &[Some(objects[shard])],
                &[],
            )
            .unwrap();
        }
        last_value[shard] = value;
        // Deterministic, schedule-dependent virtual-time progression.
        kernel.run_for(1 + (shard as u64 + 1) * 500 + (t as u64 % 3) * 137);
        sc.flush_if_due(&kernel).unwrap();
    }
    sc.flush_all(&kernel).unwrap();

    // Home pinning: each shard's decaf heap holds exactly its homed
    // object, converged to the last value written on that shard.
    for (shard, &want) in last_value.iter().enumerate() {
        let heap = sc.heap(shard, Domain::Decaf);
        let h = heap.borrow();
        assert_eq!(
            h.len(),
            1,
            "schedule {schedule:?}: shard {shard} hosts {} objects",
            h.len()
        );
        let addr = h.iter().map(|(a, _)| a).next().unwrap();
        assert_eq!(
            h.scalar(addr, "id").unwrap(),
            &XdrValue::Int(shard as i32),
            "schedule {schedule:?}: foreign object on shard {shard}"
        );
        assert_eq!(
            h.scalar(addr, "value").unwrap(),
            &XdrValue::Int(want),
            "schedule {schedule:?}: shard {shard} did not converge"
        );
    }
    assert_eq!(sc.stats().faults, 0, "schedule {schedule:?}");
    assert_eq!(sc.pending_deferred(), 0, "schedule {schedule:?}");
}

/// Replays one schedule against a [`RingSet`]: each step posts one
/// descriptor on the scheduled shard; every third step a consumer
/// drains one shard's ring and completes what it took. The quiesce
/// phase drains, completes and reclaims everything, then checks
/// conservation and completion-steering.
fn run_ring_conservation(shards: usize, schedule: &[usize]) {
    let kernel = Kernel::new();
    let set = RingSet::new("sched", shards, 16, 32);
    let mut posted_by: HashMap<u64, usize> = HashMap::new();
    for (t, &shard) in schedule.iter().enumerate() {
        let cookie = t as u64;
        set.post(
            &kernel,
            CpuClass::Kernel,
            shard,
            Descriptor {
                buf: BufHandle(cookie as u32),
                len: 64,
                cookie,
            },
        )
        .unwrap();
        posted_by.insert(cookie, shard);
        if t % 3 == 2 {
            let victim = (shard + t) % shards;
            for d in set.ring(victim).drain(&kernel, CpuClass::User) {
                let home = set.complete(&kernel, CpuClass::User, d).unwrap();
                assert_eq!(home, posted_by[&d.cookie], "schedule {schedule:?}");
            }
        }
    }
    // Quiesce: everything still in a ring gets consumed and completed.
    for shard in 0..shards {
        for d in set.ring(shard).drain(&kernel, CpuClass::User) {
            let home = set.complete(&kernel, CpuClass::User, d).unwrap();
            assert_eq!(home, posted_by[&d.cookie], "schedule {schedule:?}");
        }
    }
    // Conservation: every posted descriptor is reclaimed exactly once,
    // on the shard that posted it.
    let mut reclaimed = 0u64;
    for shard in 0..shards {
        for d in set.reclaim(&kernel, CpuClass::Kernel, shard) {
            assert_eq!(
                posted_by[&d.cookie], shard,
                "schedule {schedule:?}: cookie {} reclaimed on the wrong shard",
                d.cookie
            );
            reclaimed += 1;
        }
    }
    assert_eq!(reclaimed, set.stats().posted, "schedule {schedule:?}");
    assert_eq!(reclaimed, schedule.len() as u64, "schedule {schedule:?}");
    assert!(set.conserved(), "schedule {schedule:?}");
    assert_eq!(set.in_flight(), 0, "schedule {schedule:?}");
}

/// Replays one schedule against an async-transport sharded channel:
/// step t launches the next completion-token call on shard
/// `schedule[t]`, virtual time advances by a schedule-dependent amount
/// (so deadline launches interleave differently per schedule), every
/// third step harvests all shards, and at the schedule's midpoint the
/// decaf end of the scheduled shard dies and is recovered. Asserts
/// exactly-once harvest per token and ledger conservation.
fn run_token_lifecycle(shards: usize, schedule: &[usize]) {
    let kernel = Kernel::new();
    let sc = ShardedChannel::new(
        spec(),
        MaskSet::full(),
        ChannelConfig::kernel_user_async(),
        Domain::Nucleus,
        Domain::Decaf,
        shards,
        ShardPolicy::FlowHash,
    );
    sc.register_proc(
        Domain::Decaf,
        ProcDef {
            name: "touch".into(),
            arg_types: vec!["st".into()],
            handler: Rc::new(|_, _, _, _| XdrValue::Void),
        },
    )
    .unwrap();
    let objects: Vec<_> = (0..shards)
        .map(|i| {
            let addr = sc.alloc_shared_at(i, Domain::Nucleus, "st").unwrap();
            sc.heap(i, Domain::Nucleus)
                .borrow_mut()
                .set_scalar(addr, "id", XdrValue::Int(i as i32))
                .unwrap();
            addr
        })
        .collect();

    // Token IDs are per-shard counters, so the exactly-once ledger keys
    // on (shard, token). Object-arg steering pins each call to the
    // shard homing its object, making the issuing shard deterministic.
    let mut issued: HashSet<(usize, u64)> = HashSet::new();
    let mut resolved: HashSet<(usize, u64)> = HashSet::new();
    let collect = |resolved: &mut HashSet<(usize, u64)>| {
        for i in 0..shards {
            for tok in sc.shard(i).harvest(&kernel) {
                assert!(
                    resolved.insert((i, tok.0)),
                    "schedule {schedule:?}: token {} harvested twice on shard {i}",
                    tok.0
                );
            }
        }
    };
    let fault_step = schedule.len() / 2;
    for (t, &shard) in schedule.iter().enumerate() {
        sc.heap(shard, Domain::Nucleus)
            .borrow_mut()
            .set_scalar(objects[shard], "value", XdrValue::Int(t as i32 + 1))
            .unwrap();
        let token = sc
            .call_async(
                &kernel,
                Domain::Nucleus,
                "touch",
                &[Some(objects[shard])],
                &[],
            )
            .unwrap();
        assert!(
            issued.insert((shard, token.0)),
            "schedule {schedule:?}: token {} issued twice on shard {shard}",
            token.0
        );
        // Deterministic, schedule-dependent virtual-time progression.
        kernel.run_for(1 + (shard as u64 + 1) * 500 + (t as u64 % 3) * 137);
        sc.flush_if_due(&kernel).unwrap();
        if t == fault_step {
            // Harvest first so the internal harvest inside recovery has
            // nothing left to resolve invisibly, then kill + recover the
            // decaf end of the shard the schedule is touching. Parked
            // nucleus-originated calls survive with their tokens.
            collect(&mut resolved);
            sc.recover_shard(&kernel, shard, Domain::Decaf).unwrap();
        }
        if t % 3 == 2 {
            collect(&mut resolved);
        }
    }
    sc.flush_all(&kernel).unwrap();
    collect(&mut resolved);

    // Exactly-once: the harvested set IS the issued set (the decaf-end
    // fault requeues nucleus-originated calls, cancelling none), and the
    // stats ledger agrees.
    assert_eq!(resolved, issued, "schedule {schedule:?}");
    let s = sc.stats();
    assert_eq!(
        s.tokens_issued,
        issued.len() as u64,
        "schedule {schedule:?}"
    );
    assert_eq!(
        s.tokens_issued,
        s.tokens_harvested + s.tokens_cancelled,
        "schedule {schedule:?}: token ledger does not close"
    );
    assert_eq!(s.tokens_cancelled, 0, "schedule {schedule:?}");
    assert_eq!(sc.tokens_outstanding(), 0, "schedule {schedule:?}");
    assert!(s.overlap_ns > 0, "schedule {schedule:?}: no overlap credit");
}

#[test]
fn interleaving_enumeration_is_exhaustive_and_deterministic() {
    assert_eq!(interleavings(&[1, 1], 100), vec![vec![0, 1], vec![1, 0]]);
    // C(4,2) = 6 interleavings of two shards with two ops each.
    assert_eq!(interleavings(&[2, 2], 100).len(), 6);
    // Multinomial 6!/(2!2!2!) = 90 for three shards with two ops each.
    assert_eq!(interleavings(&[2, 2, 2], 1_000).len(), 90);
    // Deterministic: two enumerations are identical.
    assert_eq!(interleavings(&[2, 2, 2], 50), interleavings(&[2, 2, 2], 50));
}

#[test]
fn capped_selection_spreads_across_the_schedule_space() {
    // The lexicographic prefix a plain cap keeps is shard-0-heavy: all
    // 140 of 2520 four-shard schedules it admits start with shard 0.
    // The spread selection the sweeps now use sees every shard lead.
    let spread = interleavings_spread(&[2; 4], 140);
    assert_eq!(spread.len(), 140);
    let leaders: HashSet<usize> = spread.iter().map(|s| s[0]).collect();
    assert_eq!(leaders, (0..4).collect(), "every shard leads some schedule");
    assert_eq!(spread, interleavings_spread(&[2; 4], 140), "deterministic");
}

#[test]
fn enumerated_interleavings_preserve_shard_invariants() {
    // The shared sweep (20 + 90 + 140-of-2520 = 250 schedules, spread
    // across each space) replayed against the facade, the ring set and
    // the token lifecycle. The acceptance floor is 100 interleavings.
    let total = schedule_sweep(&sched::default_sweep(), |shards, schedule| {
        run_home_pinning(shards, schedule);
        run_ring_conservation(shards, schedule);
        run_token_lifecycle(shards, schedule);
    });
    assert!(total >= 100, "only {total} interleavings enumerated");
    assert_eq!(total, 250, "the documented sweep size");
}

/// One configuration's fault sweep: every schedule × every (step,
/// shard) single-fault point × capped double-fault plans, each replayed
/// with the per-step ledger oracle.
fn nic_fault_sweep(cfg: SweepConfig) {
    let stats = fault_sweep(
        &[cfg],
        fault_harness::DOUBLE_CAP,
        |shards, schedule, plan| {
            fault_harness::run_nic_fault_schedule(shards, schedule, plan);
        },
    );
    println!(
        "nic fault sweep shards={}: {} schedules, {} single fault points, \
         {} double plans, {} replays",
        cfg.shards, stats.schedules, stats.single_points, stats.double_plans, stats.replays
    );
    let steps = cfg.shards * cfg.ops;
    assert_eq!(
        stats.single_points,
        stats.schedules * steps * cfg.shards,
        "every (step, shard) injection point of every schedule"
    );
    assert_eq!(
        stats.double_plans,
        stats.schedules * fault_harness::DOUBLE_CAP
    );
}

#[test]
fn nic_fault_sweep_two_shards() {
    nic_fault_sweep(SweepConfig {
        shards: 2,
        ops: 3,
        cap: 1_000,
    });
}

#[test]
fn nic_fault_sweep_three_shards() {
    nic_fault_sweep(SweepConfig {
        shards: 3,
        ops: 2,
        cap: 1_000,
    });
}

#[test]
fn nic_fault_sweep_four_shards() {
    nic_fault_sweep(SweepConfig {
        shards: 4,
        ops: 2,
        cap: 140,
    });
}

/// Oracle sensitivity: with the planted drop-one-requeue bug armed,
/// the same replay that passes the sweep must *fail* — recovery loses
/// a surviving call and its token leaks, which the exactly-once ledger
/// has to reject. An oracle that blesses a planted bug proves nothing.
#[test]
#[cfg(debug_assertions)] // the mutation seam exists in debug builds only
fn fault_oracle_rejects_planted_requeue_drop() {
    use decaf_core::xpc::shard::mutation;
    // A plan whose fault point has calls parked on the victim: two
    // back-to-back ops on shard 0, faulted right after the second.
    let schedule = [0usize, 0, 1, 1];
    let plan = FaultPlan::single(1, 0);
    fault_harness::expect_oracle_failure("drop-one-requeue", || {
        mutation::arm_drop_one_requeue();
        fault_harness::run_nic_fault_schedule(2, &schedule, &plan);
    });
    mutation::disarm();
    // The identical replay passes clean — the failure above was the
    // planted bug, not the harness.
    fault_harness::run_nic_fault_schedule(2, &schedule, &plan);
}

/// Runs a traced shards=4 netperf stream on the sharded e1000 build
/// and returns the tracer plus the serialized Chrome JSON.
fn traced_sharded_netperf() -> (Rc<decaf_core::simkernel::decaf_trace::Tracer>, String, u64) {
    use decaf_core::simkernel::decaf_trace::{chrome_trace_json, Tracer};
    let kernel = Kernel::new();
    let tracer = Tracer::new();
    kernel.set_tracer(Some(Rc::clone(&tracer)));
    let drv = decaf_core::drivers::e1000::decaf::install_sharded(&kernel, "eth0", 4)
        .expect("sharded e1000 installs");
    kernel.netdev_open("eth0").expect("open");
    kernel.schedule_point();
    decaf_core::drivers::workloads::netperf_send(&kernel, "eth0", 1, 2_000, 1500).expect("netperf");
    drv.channels.flush_all(&kernel).expect("final flush");
    drv.channels.harvest_all(&kernel);
    let json = chrome_trace_json(&tracer.events());
    (tracer, json, kernel.now_ns())
}

/// Same seed, same schedule — the trace buffers must be byte-identical
/// (the CI diffability claim), and each buffer must satisfy span
/// discipline: every span closed, brackets nested per track, no span on
/// one shard's timeline partially overlapping another.
#[test]
fn same_seed_traces_are_byte_identical_and_well_nested() {
    use decaf_core::simkernel::decaf_trace::{validate_chrome_json, validate_nesting};
    let (t1, json1, now1) = traced_sharded_netperf();
    let (t2, json2, now2) = traced_sharded_netperf();

    assert!(t1.event_count() > 0, "traced run recorded no events");
    assert_eq!(now1, now2, "virtual clocks diverged between same-seed runs");
    assert_eq!(
        t1.event_count(),
        t2.event_count(),
        "event counts diverged between same-seed runs"
    );
    assert_eq!(json1, json2, "same-seed trace buffers differ");

    // Span discipline: every guard dropped, every request completed,
    // and the event stream brackets cleanly on every shard track.
    assert_eq!(t1.open_span_count(), 0, "sync spans left open");
    assert_eq!(t1.open_request_count(), 0, "request spans left open");
    validate_nesting(&t1.events()).expect("span nesting violated");
    let n = validate_chrome_json(&json1).expect("chrome JSON invalid");
    assert_eq!(n, t1.event_count(), "serialized event count mismatch");

    // The sharded run actually used the shard tracks: events must land
    // on more than just track 0.
    let tracks: HashSet<u32> = t1.events().iter().map(|e| e.track).collect();
    assert!(
        tracks.len() > 1,
        "sharded run emitted on a single track: {tracks:?}"
    );
}
