//! Deterministic schedule exploration for the sharded storage path,
//! plus the differential oracle across every uhci hosting.
//!
//! The NIC harness (`tests/shard_sched.rs`) checks home pinning and
//! descriptor conservation; storage adds three invariants of its own,
//! and this harness replays them against *every* enumerated ordering of
//! per-shard submit / giveback / reclaim work (the shared enumerator
//! lives in `decaf_core::sched` — lexicographic multiset permutations,
//! no randomness, every failing schedule is a reproducer):
//!
//! * **sector-run alias freedom** — at every step of every schedule, no
//!   two live runs of the one shared [`SectorPool`] overlap, whatever
//!   allocate/reclaim interleaving the shards produce;
//! * **pool conservation** — every sector ever allocated is reclaimed
//!   or still in use, checked mid-schedule and at quiescence, with the
//!   payloads read back bit-for-bit and zero audited copies;
//! * **posting-shard completion affinity** — a completer draining any
//!   shard's submit ring must see every giveback steered home to the
//!   shard that submitted it ([`UrbRingSet::complete`]), and per-shard
//!   conservation counters must balance on every schedule.
//!
//! The **differential oracle** then replays one multi-LUN workload —
//! interleaved short and full sector writes, then streaming reads —
//! through every hosting of the uhci URB path (`install_native`,
//! `install_value` copy + batched, `install_shmring`,
//! `install_sharded(1..=4)`) and asserts byte-identical flash contents
//! and identical actual-length read results across all of them: eight
//! drivers, one observable behaviour.

use std::collections::HashMap;
use std::rc::Rc;

use decaf_core::drivers::uhci;
use decaf_core::sched::{
    self, fault_sweep, interleavings, schedule_count, schedule_count_checked, schedule_sweep,
    FaultPlan, SweepConfig,
};

#[path = "fault_harness/mod.rs"]
mod fault_harness;
use decaf_core::shmring::{SectorPool, SgSegment, UrbDescriptor, UrbRingSet};
use decaf_core::simdev::uhci as hwreg;
use decaf_core::simkernel::usb::{Urb, UrbDir};
use decaf_core::simkernel::{costs, CpuClass, Kernel};

// ------------------------------------------------ schedule exploration

const SECTOR: usize = 64;
const POOL_SECTORS: usize = 24;

/// Transfer length of step `t` on shard `s`: spans sub-sector to
/// three-sector runs, deterministically.
fn xfer_len(t: usize, shard: usize) -> usize {
    1 + (t * 37 + shard * 53) % (3 * SECTOR)
}

/// Deterministic payload for one step.
fn payload(t: usize, shard: usize) -> Vec<u8> {
    let len = xfer_len(t, shard);
    (0..len)
        .map(|i| (t as u8) ^ (shard as u8).wrapping_mul(29) ^ (i as u8).wrapping_mul(13))
        .collect()
}

/// Replays one schedule against a [`UrbRingSet`] over one shared
/// [`SectorPool`]: step `t` submits a URB on shard `schedule[t]`
/// (allocate a run, adopt the payload, post, note origin); every third
/// step a completer drains a schedule-dependent victim shard and gives
/// everything back; every fifth step a reclaimer drains a giveback ring
/// and frees the runs. The quiesce phase completes and reclaims the
/// rest. Invariants are asserted at every step, not just at the end.
fn run_storage_schedule(shards: usize, schedule: &[usize]) {
    let kernel = Kernel::new();
    let pool = Rc::new(SectorPool::with_capacity(SECTOR, POOL_SECTORS));
    let set = UrbRingSet::new(
        "sched",
        shards,
        schedule.len().max(1),
        2 * schedule.len().max(1),
        pool,
    );
    // Live chains as cookie -> (segments, submitting shard).
    let mut live: HashMap<u64, (Vec<SgSegment>, usize)> = HashMap::new();
    let mut reclaimed_per_shard = vec![0u64; shards];

    let complete_ring =
        |kernel: &Kernel, victim: usize, live: &HashMap<u64, (Vec<SgSegment>, usize)>| {
            for d in set.submit_ring(victim).drain(kernel, CpuClass::User) {
                let (_, submitter) = &live[&d.cookie];
                let submitter = *submitter;
                let home = set
                    .complete(kernel, CpuClass::User, d.completed(0, d.len))
                    .unwrap();
                assert_eq!(
                    home, submitter,
                    "schedule {schedule:?}: cookie {} steered astray",
                    d.cookie
                );
            }
        };

    for (t, &shard) in schedule.iter().enumerate() {
        let cookie = t as u64;
        let data = payload(t, shard);
        let run = set.pool().alloc_sg(data.len()).unwrap();
        set.pool().adopt_payload_sg(&kernel, &data, run).unwrap();
        let segs = set.pool().sg_segments(run).unwrap();
        // Alias freedom: no segment of the fresh chain overlaps any
        // segment of any live chain.
        for (&other, (osegs, _)) in &live {
            for s in &segs {
                for o in osegs {
                    assert!(
                        s.offset + s.bytes <= o.offset || o.offset + o.bytes <= s.offset,
                        "schedule {schedule:?}: chain of cookie {cookie} [{}, {}) \
                         aliases live chain of cookie {other} [{}, {})",
                        s.offset,
                        s.offset + s.bytes,
                        o.offset,
                        o.offset + o.bytes
                    );
                }
            }
        }
        set.submit_ring(shard)
            .push(
                &kernel,
                CpuClass::Kernel,
                UrbDescriptor::request_out(run, data.len() as u32, 2, cookie),
            )
            .unwrap();
        set.note_submit(shard, cookie);
        live.insert(cookie, (segs, shard));

        if t % 3 == 2 {
            complete_ring(&kernel, (shard + t) % shards, &live);
        }
        if t % 5 == 4 {
            let rshard = (shard + 2 * t) % shards;
            for d in set.reclaim(&kernel, CpuClass::Kernel, rshard) {
                let (_, submitter) = live[&d.cookie].clone();
                assert_eq!(
                    submitter, rshard,
                    "schedule {schedule:?}: cookie {} reclaimed on the wrong shard",
                    d.cookie
                );
                // The adopted payload gathers back bit-for-bit, in place.
                let idx = d.cookie as usize;
                assert_eq!(
                    set.pool()
                        .read_payload_sg(d.buf, d.actual as usize)
                        .unwrap(),
                    payload(idx, submitter),
                    "schedule {schedule:?}: payload of cookie {} corrupted",
                    d.cookie
                );
                set.pool().free_sg(d.buf).unwrap();
                live.remove(&d.cookie);
                reclaimed_per_shard[rshard] += 1;
            }
        }
        // Conservation holds mid-schedule, not just at quiescence.
        assert!(set.conserved(), "schedule {schedule:?} at step {t}");
        assert!(set.pool().conserved(), "schedule {schedule:?} at step {t}");
    }

    // Quiesce: complete every parked request, reclaim every giveback.
    for victim in 0..shards {
        complete_ring(&kernel, victim, &live);
    }
    for (rshard, reclaimed) in reclaimed_per_shard.iter_mut().enumerate() {
        for d in set.reclaim(&kernel, CpuClass::Kernel, rshard) {
            let (_, submitter) = live[&d.cookie].clone();
            assert_eq!(submitter, rshard, "schedule {schedule:?}");
            set.pool().free_sg(d.buf).unwrap();
            live.remove(&d.cookie);
            *reclaimed += 1;
        }
    }

    assert!(live.is_empty(), "schedule {schedule:?}: runs left live");
    for (shard, &reclaimed) in reclaimed_per_shard.iter().enumerate() {
        assert!(
            set.shard_conserved(shard),
            "schedule {schedule:?}: shard {shard} not conserved"
        );
        assert_eq!(
            reclaimed,
            set.shard_stats(shard).submitted,
            "schedule {schedule:?}: shard {shard} reclaim count"
        );
        assert_eq!(
            set.shard_stats(shard).submitted,
            schedule.iter().filter(|&&s| s == shard).count() as u64,
            "schedule {schedule:?}: shard {shard} submit count"
        );
    }
    assert!(set.conserved(), "schedule {schedule:?}");
    assert_eq!(set.in_flight(), 0, "schedule {schedule:?}");
    assert!(set.pool().conserved(), "schedule {schedule:?}");
    assert_eq!(set.pool().in_use_sectors(), 0, "schedule {schedule:?}");
    assert_eq!(
        kernel.stats().bytes_copied,
        0,
        "schedule {schedule:?}: adoption and in-place reads never copy"
    );
}

#[test]
fn shared_enumerator_counts_storage_configurations() {
    // The storage sweep below: 20 + 90 + 140-of-2520 = 250 schedules.
    assert_eq!(schedule_count(&[3, 3]), 20);
    assert_eq!(schedule_count(&[2, 2, 2]), 90);
    assert_eq!(schedule_count(&[2, 2, 2, 2]), 2520);
    assert_eq!(
        interleavings(&[2, 2, 2, 2], 140).len(),
        140,
        "the cap truncates the 4-shard set deterministically"
    );
    // The counting itself is overflow-checked: the boundary sits at
    // 34! < u128::MAX < 35!.
    assert!(schedule_count_checked(&[1; 34]).is_some());
    assert_eq!(schedule_count_checked(&[1; 35]), None);
}

#[test]
fn enumerated_storage_schedules_preserve_invariants() {
    // The shared sweep (20 + 90 + 140-of-2520 = 250 schedules, spread
    // across each space), each replaying the submit/giveback/reclaim
    // protocol with interleaved completers and reclaimers. The
    // acceptance floor is 200.
    let total = schedule_sweep(&sched::default_sweep(), |shards, schedule| {
        run_storage_schedule(shards, schedule);
    });
    assert!(total >= 200, "only {total} interleavings enumerated");
    assert_eq!(total, 250, "the documented sweep size");
}

// ---------------------------------------------------- fault exploration

/// One configuration's fault sweep on the *driver-level* storage path:
/// every schedule × every (step, shard) `recover_shard` injection point
/// × capped double-fault plans, each replayed on a fresh
/// `install_sharded` build with conservation and the zero-copy audit
/// checked per step and flash compared byte-for-byte against one
/// native-hosting golden run at settle.
fn storage_fault_sweep(cfg: SweepConfig) {
    let golden = fault_harness::storage_golden_flash(cfg.shards, cfg.ops);
    let stats = fault_sweep(
        &[cfg],
        fault_harness::DOUBLE_CAP,
        |shards, schedule, plan| {
            fault_harness::run_storage_fault_schedule(shards, schedule, plan, &golden);
        },
    );
    println!(
        "storage fault sweep shards={}: {} schedules, {} single fault points, \
         {} double plans, {} replays",
        cfg.shards, stats.schedules, stats.single_points, stats.double_plans, stats.replays
    );
    let steps = cfg.shards * cfg.ops;
    assert_eq!(
        stats.single_points,
        stats.schedules * steps * cfg.shards,
        "every (step, shard) injection point of every schedule"
    );
    assert_eq!(
        stats.double_plans,
        stats.schedules * fault_harness::DOUBLE_CAP
    );
}

#[test]
fn storage_fault_sweep_two_shards() {
    storage_fault_sweep(SweepConfig {
        shards: 2,
        ops: 3,
        cap: 1_000,
    });
}

#[test]
fn storage_fault_sweep_three_shards() {
    storage_fault_sweep(SweepConfig {
        shards: 3,
        ops: 2,
        cap: 1_000,
    });
}

#[test]
fn storage_fault_sweep_four_shards() {
    storage_fault_sweep(SweepConfig {
        shards: 4,
        ops: 2,
        cap: 140,
    });
}

/// Oracle sensitivity: with the planted double-completion bug armed,
/// the same replay that passes the sweep must *fail* — one giveback
/// lands twice and the submitter reclaims the same URB twice, which
/// the exactly-once-completion / pool oracle has to reject.
#[test]
#[cfg(debug_assertions)] // the mutation seam exists in debug builds only
fn fault_oracle_rejects_planted_double_completion() {
    use decaf_core::shmring::urbset::mutation;
    let golden = fault_harness::storage_golden_flash(2, 2);
    let schedule = [0usize, 1, 0, 1];
    let plan = FaultPlan::single(1, 0);
    fault_harness::expect_oracle_failure("double-fire-completion", || {
        mutation::arm_double_complete();
        fault_harness::run_storage_fault_schedule(2, &schedule, &plan, &golden);
    });
    mutation::disarm();
    // The identical replay passes clean — the failure above was the
    // planted bug, not the harness.
    fault_harness::run_storage_fault_schedule(2, &schedule, &plan, &golden);
}

// ------------------------------------------------- differential oracle

const ORACLE_LUNS: usize = 3;
const ORACLE_SECTORS: u32 = 4;

/// Read results keyed by cell: `(lun, sector, actual bytes delivered)`.
type CellReads = Vec<(usize, u32, Vec<u8>)>;

/// Payload length of one (lun, sector) cell: full sectors interleaved
/// with short ones — so actual-length reporting is part of the oracle —
/// plus a *multi-sector* cell whose write command spans several pool
/// sectors. The native hosting still carries it in one TD (the command
/// stays under the TD maxlen ceiling) while the ring hostings build a
/// scatter-gather chain for it: the reassembly itself is under
/// differential test.
fn cell_len(lun: usize, sector: u32) -> usize {
    match (lun + sector as usize) % 4 {
        0 => hwreg::SECTOR_SIZE,
        1 => 100,
        2 => 3 * hwreg::SECTOR_SIZE - 36,
        _ => 37,
    }
}

/// Payload bytes of one cell (deterministic, distinct per cell).
fn cell_payload(lun: usize, sector: u32) -> Vec<u8> {
    (0..cell_len(lun, sector))
        .map(|i| (lun as u8) ^ (sector as u8).wrapping_mul(41) ^ (i as u8).wrapping_mul(7))
        .collect()
}

/// Runs the multi-LUN oracle workload against an installed uhci build:
/// writes every (lun, sector) cell with LUN streams interleaved sector
/// by sector, then streams everything back the same way. Returns the
/// read results sorted by (lun, sector) — the actual bytes each IN
/// transfer delivered.
fn oracle_workload(k: &Kernel, hcd: &str) -> CellReads {
    for sector in 0..ORACLE_SECTORS {
        for lun in 0..ORACLE_LUNS {
            let mut data = vec![hwreg::FLASH_CMD_WRITE];
            data.extend_from_slice(&sector.to_le_bytes());
            data.extend_from_slice(&cell_payload(lun, sector));
            k.usb_submit_urb(
                hcd,
                Urb {
                    endpoint: hwreg::ep_bulk_out(lun) as u8,
                    dir: UrbDir::Out,
                    data,
                },
                Rc::new(|_, r| {
                    r.unwrap();
                }),
            )
            .unwrap();
            k.schedule_point();
        }
    }
    k.run_for(4 * costs::DOORBELL_COALESCE_NS);

    let results: Rc<std::cell::RefCell<CellReads>> = Rc::new(std::cell::RefCell::new(Vec::new()));
    for sector in 0..ORACLE_SECTORS {
        for lun in 0..ORACLE_LUNS {
            let mut cmd = vec![hwreg::FLASH_CMD_READ];
            cmd.extend_from_slice(&sector.to_le_bytes());
            k.usb_submit_urb(
                hcd,
                Urb {
                    endpoint: hwreg::ep_bulk_out(lun) as u8,
                    dir: UrbDir::Out,
                    data: cmd,
                },
                Rc::new(|_, _| {}),
            )
            .unwrap();
            let out = Rc::clone(&results);
            k.usb_submit_urb(
                hcd,
                Urb {
                    endpoint: hwreg::ep_bulk_in(lun) as u8,
                    dir: UrbDir::In,
                    // Request the cell's own length (at least a sector):
                    // the short cells still come back at their true
                    // actual length, and the multi-sector cell fits.
                    data: vec![0; cell_len(lun, sector)],
                },
                Rc::new(move |_, r| {
                    out.borrow_mut().push((lun, sector, r.unwrap()));
                }),
            )
            .unwrap();
            k.schedule_point();
        }
    }
    k.run_for(4 * costs::DOORBELL_COALESCE_NS);

    let mut out = Rc::try_unwrap(results).unwrap().into_inner();
    // Completion *dispatch* order may legally differ across hostings
    // (watermark vs deadline doorbells); per-cell results may not.
    out.sort_by_key(|&(lun, sector, _)| (lun, sector));
    out
}

#[test]
fn differential_oracle_all_hostings_agree_bit_for_bit() {
    type Snapshot = (CellReads, CellReads);
    let run =
        |label: &str,
         install: &dyn Fn(&Kernel) -> Rc<std::cell::RefCell<decaf_core::simdev::UhciDevice>>|
         -> Snapshot {
            let k = Kernel::new();
            let dev = install(&k);
            let results = oracle_workload(&k, "uhci0");
            assert_eq!(
                results.len(),
                ORACLE_LUNS * ORACLE_SECTORS as usize,
                "{label}: not every read completed"
            );
            assert!(k.violations().is_empty(), "{label}: {:?}", k.violations());
            let flash = dev.borrow().flash_contents();
            (results, flash)
        };

    // The native build is the golden reference.
    let golden = run("native", &|k| uhci::install_native(k, "uhci0").unwrap().dev);

    // Every cell's read returns exactly the bytes written — including
    // the short cells at their true actual length.
    for (lun, sector, data) in &golden.0 {
        assert_eq!(
            data,
            &cell_payload(*lun, *sector),
            "native read of ({lun}, {sector})"
        );
    }

    let hostings: Vec<(String, Snapshot)> = vec![
        (
            "value/copy".into(),
            run("value/copy", &|k| {
                uhci::install_value(k, "uhci0", false).unwrap().dev
            }),
        ),
        (
            "value/batched".into(),
            run("value/batched", &|k| {
                uhci::install_value(k, "uhci0", true).unwrap().dev
            }),
        ),
        (
            "shmring".into(),
            run("shmring", &|k| {
                uhci::install_shmring(k, "uhci0").unwrap().dev
            }),
        ),
    ]
    .into_iter()
    .chain((1..=4).map(|shards| {
        (
            format!("sharded/{shards}"),
            run(&format!("sharded/{shards}"), &move |k| {
                uhci::install_sharded(k, "uhci0", shards).unwrap().dev
            }),
        )
    }))
    .collect();

    for (label, (results, flash)) in &hostings {
        assert_eq!(
            results, &golden.0,
            "{label}: actual-length read results diverge from native"
        );
        assert_eq!(
            flash, &golden.1,
            "{label}: flash contents diverge from native"
        );
    }
}

#[test]
fn differential_oracle_zero_copy_only_on_ring_hostings() {
    // The same workload also separates the hostings where it should:
    // by-value copies, ring hostings adopt. A sharded build that
    // quietly started copying would pass the contents oracle but fail
    // here.
    let copied = |install: &dyn Fn(&Kernel)| {
        let k = Kernel::new();
        install(&k);
        oracle_workload(&k, "uhci0");
        k.stats().bytes_copied
    };
    assert!(
        copied(&|k| {
            uhci::install_value(k, "uhci0", false).unwrap();
        }) > 0,
        "the by-value hosting must pay its copies"
    );
    assert_eq!(
        copied(&|k| {
            uhci::install_shmring(k, "uhci0").unwrap();
        }),
        0
    );
    for shards in [1usize, 4] {
        assert_eq!(
            copied(&|k| {
                uhci::install_sharded(k, "uhci0", shards).unwrap();
            }),
            0,
            "shards={shards}"
        );
    }
}
